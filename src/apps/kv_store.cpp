#include "apps/kv_store.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc.hpp"

namespace snacc::apps {

namespace {

// Record header field offsets (all little-endian, 4 kB block).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffSeq = 8;
constexpr std::size_t kOffGen = 16;
constexpr std::size_t kOffKeyLen = 24;
constexpr std::size_t kOffValueLen = 32;
constexpr std::size_t kOffValueCrc = 40;
constexpr std::size_t kOffFlags = 44;
constexpr std::size_t kOffHeaderCrc = 48;
constexpr std::size_t kOffKey = 52;

/// Real value bytes were checksummed; phantom (size-only) payloads carry no
/// bits to sum, a model limitation recovery has to live with.
constexpr std::uint32_t kFlagValueHasCrc = 1u << 0;

std::uint32_t header_crc_over(std::span<const std::byte> raw,
                              std::uint64_t key_len) {
  // CRC over [0, kOffKey + key_len) with the header_crc field zeroed: chain
  // around the 4-byte hole instead of copying the block.
  constexpr std::byte kZeros[4] = {};
  std::uint32_t crc = crc32c(raw.subspan(0, kOffHeaderCrc));
  crc = crc32c(std::span<const std::byte>(kZeros, 4), crc);
  return crc32c(raw.subspan(kOffKey, key_len), crc);
}

}  // namespace

const char* put_status_name(PutStatus s) {
  switch (s) {
    case PutStatus::kOk:
      return "ok";
    case PutStatus::kOversizedKey:
      return "oversized-key";
    case PutStatus::kLogFull:
      return "log-full";
    case PutStatus::kIoError:
      return "io-error";
  }
  return "?";
}

KvStore::KvStore(core::StorageClient& client, Bytes region_base,
                 Bytes region_capacity)
    : client_(&client),
      region_base_(region_base),
      region_capacity_(region_capacity),
      base_(region_base + Bytes{kSuperBytes}),
      capacity_(region_capacity - Bytes{kSuperBytes}),
      head_(base_) {}

KvStore::KvStore(core::NvmeStreamer& streamer, Bytes region_base,
                 Bytes region_capacity)
    : owned_pe_(std::make_unique<core::PeClient>(streamer)),
      client_(owned_pe_.get()),
      region_base_(region_base),
      region_capacity_(region_capacity),
      base_(region_base + Bytes{kSuperBytes}),
      capacity_(region_capacity - Bytes{kSuperBytes}),
      head_(base_) {}

Payload KvStore::make_header(const std::string& key, Bytes value_bytes,
                             std::uint64_t sequence, std::uint64_t generation,
                             const Payload& value) const {
  std::vector<std::byte> raw(kHeaderBytes, std::byte{0});
  const std::uint64_t key_len = key.size();
  // snacc-lint: allow(value-escape): record header wire encoding
  const std::uint64_t vb = value_bytes.value();
  const std::uint32_t value_crc = value.has_data() ? crc32c(value.view()) : 0;
  const std::uint32_t flags = value.has_data() ? kFlagValueHasCrc : 0;
  std::memcpy(raw.data() + kOffMagic, &kMagic, 8);
  std::memcpy(raw.data() + kOffSeq, &sequence, 8);
  std::memcpy(raw.data() + kOffGen, &generation, 8);
  std::memcpy(raw.data() + kOffKeyLen, &key_len, 8);
  std::memcpy(raw.data() + kOffValueLen, &vb, 8);
  std::memcpy(raw.data() + kOffValueCrc, &value_crc, 4);
  std::memcpy(raw.data() + kOffFlags, &flags, 4);
  std::memcpy(raw.data() + kOffKey, key.data(), key.size());
  const std::uint32_t hcrc = header_crc_over(raw, key_len);
  std::memcpy(raw.data() + kOffHeaderCrc, &hcrc, 4);
  return Payload::bytes(std::move(raw));
}

bool KvStore::parse_header(const Payload& header, ParsedHeader* out) {
  if (!header.has_data() || header.size() < kHeaderBytes) return false;
  auto v = header.view();
  std::uint64_t magic = 0;
  std::memcpy(&magic, v.data() + kOffMagic, 8);
  if (magic != kMagic) return false;
  std::uint64_t key_len = 0;
  std::memcpy(&out->sequence, v.data() + kOffSeq, 8);
  std::memcpy(&out->generation, v.data() + kOffGen, 8);
  std::memcpy(&key_len, v.data() + kOffKeyLen, 8);
  std::memcpy(&out->value_bytes, v.data() + kOffValueLen, 8);
  std::memcpy(&out->value_crc, v.data() + kOffValueCrc, 4);
  std::uint32_t flags = 0;
  std::memcpy(&flags, v.data() + kOffFlags, 4);
  out->value_has_crc = (flags & kFlagValueHasCrc) != 0;
  if (key_len > kMaxKeyBytes || kOffKey + key_len > v.size()) return false;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, v.data() + kOffHeaderCrc, 4);
  if (stored_crc != header_crc_over(v, key_len)) return false;  // torn header
  out->key.assign(reinterpret_cast<const char*>(v.data() + kOffKey), key_len);
  return true;
}

Payload KvStore::make_superblock(std::uint64_t generation, Bytes log_base,
                                 Bytes log_capacity) const {
  std::vector<std::byte> raw(4 * KiB, std::byte{0});
  // snacc-lint: allow(value-escape): superblock wire encoding
  const std::uint64_t lb = log_base.value();
  // snacc-lint: allow(value-escape): superblock wire encoding
  const std::uint64_t lc = log_capacity.value();
  std::memcpy(raw.data() + 0, &kSuperMagic, 8);
  std::memcpy(raw.data() + 8, &generation, 8);
  std::memcpy(raw.data() + 16, &lb, 8);
  std::memcpy(raw.data() + 24, &lc, 8);
  const std::uint32_t crc =
      crc32c(std::span<const std::byte>(raw.data(), 32));
  std::memcpy(raw.data() + 32, &crc, 4);
  return Payload::bytes(std::move(raw));
}

bool KvStore::parse_superblock(const Payload& block, std::uint64_t* generation,
                               Bytes* log_base, Bytes* log_capacity) {
  if (!block.has_data() || block.size() < 36) return false;
  auto v = block.view();
  std::uint64_t magic = 0;
  std::memcpy(&magic, v.data(), 8);
  if (magic != kSuperMagic) return false;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, v.data() + 32, 4);
  if (stored_crc != crc32c(v.subspan(0, 32))) return false;
  std::uint64_t lb = 0;
  std::uint64_t lc = 0;
  std::memcpy(generation, v.data() + 8, 8);
  std::memcpy(&lb, v.data() + 16, 8);
  std::memcpy(&lc, v.data() + 24, 8);
  *log_base = Bytes{lb};
  *log_capacity = Bytes{lc};
  return true;
}

sim::Task KvStore::put(std::string key, Payload value, PutStatus* status) {
  PutStatus st = PutStatus::kOk;
  if (wedged_) {
    st = PutStatus::kIoError;
  } else if (key.size() > kMaxKeyBytes) {
    st = PutStatus::kOversizedKey;
  } else if (head_ + record_span(Bytes{value.size()}) > base_ + capacity_) {
    st = PutStatus::kLogFull;
  }
  if (st != PutStatus::kOk) {
    if (status != nullptr) *status = st;
    co_return;
  }
  const Bytes span = record_span(Bytes{value.size()});
  // Reserve the extent and sequence before suspending so pipelined puts
  // from concurrent tasks never collide.
  const Bytes addr = head_;
  head_ += span;
  const std::uint64_t seq = sequence_++;
  const Bytes value_bytes{value.size()};
  Payload record = Payload::concat(
      make_header(key, value_bytes, seq, generation_, value), std::move(value));
  bool err = false;
  co_await client_->write(addr, std::move(record), &err);
  if (err) {
    // The record may have partially landed: an unverifiable hole that would
    // truncate every later record at recovery. Wedge the store.
    wedged_ = true;
    if (status != nullptr) *status = PutStatus::kIoError;
    co_return;
  }
  index_[std::move(key)] = Entry{addr, value_bytes};
  ++puts_;
  if (status != nullptr) *status = PutStatus::kOk;
}

sim::Task KvStore::commit(bool* ok) {
  // Group commit: one device flush barrier makes every previously
  // acknowledged put durable at once. put() awaits its write response
  // before returning, so everything a caller has seen acknowledged is
  // covered by this barrier.
  bool err = false;
  co_await client_->flush(&err);
  ++commits_;
  if (ok != nullptr) *ok = !err && !wedged_;
}

sim::Task KvStore::get(const std::string& key, Payload* out, bool* found) {
  ++gets_;
  auto it = index_.find(key);
  if (it == index_.end()) {
    *found = false;
    co_return;
  }
  *found = true;
  if (out != nullptr) {
    co_await client_->read(it->second.record_addr + Bytes{kHeaderBytes},
                           it->second.value_bytes, out);
  }
}

sim::Task KvStore::compact(Bytes scratch_base, Bytes scratch_capacity,
                           Bytes* reclaimed_bytes, bool* ok) {
  const Bytes before = log_bytes_used();
  const std::uint64_t new_gen = generation_ + 1;
  Bytes new_head = scratch_base;
  std::uint64_t new_seq = 0;
  std::unordered_map<std::string, Entry> new_index;
  if (reclaimed_bytes != nullptr) *reclaimed_bytes = Bytes{};
  if (ok != nullptr) *ok = false;
  // Stream every live record to the scratch log. Device-to-device copy goes
  // through the PE (read stream in, write stream out), so compaction runs on
  // the FPGA path like everything else. Walk the keys in sorted order: the
  // index is an unordered_map, and letting hash-iteration order decide the
  // rewritten log layout would make post-compaction timing and on-device
  // placement nondeterministic.
  std::vector<const std::string*> keys;
  keys.reserve(index_.size());
  for (const auto& [key, entry] : index_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* kp : keys) {
    const std::string& key = *kp;
    const Entry& entry = index_.at(key);
    Payload value;
    bool err = false;
    co_await client_->read(entry.record_addr + Bytes{kHeaderBytes},
                           entry.value_bytes, &value, &err);
    if (err) co_return;  // source unreadable: abort, keep the old log
    const Bytes span = record_span(entry.value_bytes);
    if (new_head + span > scratch_base + scratch_capacity) {
      co_return;  // scratch too small: abort without switching over
    }
    Payload record = Payload::concat(
        make_header(key, entry.value_bytes, new_seq, new_gen, value),
        std::move(value));
    co_await client_->write(new_head, std::move(record), &err);
    if (err) co_return;  // scratch log has a hole: abort
    new_index[key] = Entry{new_head, entry.value_bytes};
    new_head += span;
    ++new_seq;
  }
  // Journaled switch-over: (1) the whole scratch log becomes durable, (2)
  // the superblock naming it is written to the inactive ping-pong slot, (3)
  // the superblock becomes durable. A crash anywhere in between leaves
  // recovery a fully-old or fully-new view, never a mix.
  bool err = false;
  co_await client_->flush(&err);
  if (err) co_return;
  co_await client_->write(super_slot_addr(new_gen),
                          make_superblock(new_gen, scratch_base,
                                          scratch_capacity),
                          &err);
  if (err) co_return;
  co_await client_->flush(&err);
  if (err) co_return;
  generation_ = new_gen;
  base_ = scratch_base;
  capacity_ = scratch_capacity;
  head_ = new_head;
  sequence_ = new_seq;
  index_ = std::move(new_index);
  if (reclaimed_bytes != nullptr) {
    *reclaimed_bytes = before - log_bytes_used();
  }
  if (ok != nullptr) *ok = true;
}

sim::Task KvStore::recover(std::uint64_t* records_out) {
  index_.clear();
  wedged_ = false;
  // Superblock election: both ping-pong slots are read, the valid one with
  // the highest generation names the active log; a store that never
  // compacted has no superblock and uses the default log after the slots.
  generation_ = 0;
  base_ = region_base_ + Bytes{kSuperBytes};
  capacity_ = region_capacity_ - Bytes{kSuperBytes};
  bool have_super = false;
  for (int slot = 0; slot < 2; ++slot) {
    Payload block;
    bool err = false;
    co_await client_->read(region_base_ + Bytes{slot * (4 * KiB)},
                           Bytes{4 * KiB}, &block, &err);
    if (err) continue;
    std::uint64_t gen = 0;
    Bytes lb;
    Bytes lc;
    if (!parse_superblock(block, &gen, &lb, &lc)) continue;
    if (!have_super || gen > generation_) {
      generation_ = gen;
      base_ = lb;
      capacity_ = lc;
      have_super = true;
    }
  }
  head_ = base_;
  sequence_ = 0;
  std::uint64_t records = 0;
  std::uint64_t prev_seq = 0;
  while (head_ + Bytes{kHeaderBytes} <= base_ + capacity_) {
    Payload header;
    bool err = false;
    co_await client_->read(head_, Bytes{kHeaderBytes}, &header, &err);
    if (err) break;
    ParsedHeader h;
    if (!parse_header(header, &h)) break;  // log end or torn header
    // A record from another generation or out of sequence is stale debris
    // (e.g. a pre-compaction log under a reused extent): truncate here.
    if (h.generation != generation_ ||
        (records > 0 && h.sequence <= prev_seq)) {
      ++truncated_records_;
      break;
    }
    const Bytes span = record_span(Bytes{h.value_bytes});
    if (head_ + span > base_ + capacity_) {
      ++truncated_records_;
      break;
    }
    if (h.value_has_crc && h.value_bytes > 0) {
      // The value read *is* the recovery cost the ablation measures: every
      // recovered record's bytes come back over the device path.
      Payload value;
      co_await client_->read(head_ + Bytes{kHeaderBytes}, Bytes{h.value_bytes},
                             &value, &err);
      if (err || !value.has_data() || crc32c(value.view()) != h.value_crc) {
        ++truncated_records_;  // torn value: the put never fully landed
        break;
      }
    }
    index_[std::move(h.key)] = Entry{head_, Bytes{h.value_bytes}};
    head_ += span;
    prev_seq = h.sequence;
    sequence_ = h.sequence + 1;
    ++records;
  }
  if (records_out != nullptr) *records_out = records;
}

}  // namespace snacc::apps
