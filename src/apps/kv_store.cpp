#include "apps/kv_store.hpp"

#include <algorithm>
#include <cstring>

namespace snacc::apps {

KvStore::KvStore(core::NvmeStreamer& streamer, Bytes log_base,
                 Bytes log_capacity)
    : pe_(streamer), base_(log_base), capacity_(log_capacity), head_(log_base) {}

Payload KvStore::make_header(const std::string& key, Bytes value_bytes,
                             std::uint64_t sequence) const {
  std::vector<std::byte> raw(kHeaderBytes, std::byte{0});
  const std::uint64_t key_len = key.size();
  // snacc-lint: allow(value-escape): record header wire encoding
  const std::uint64_t vb = value_bytes.value();
  std::memcpy(raw.data() + 0, &kMagic, 8);
  std::memcpy(raw.data() + 8, &sequence, 8);
  std::memcpy(raw.data() + 16, &key_len, 8);
  std::memcpy(raw.data() + 24, &vb, 8);
  std::memcpy(raw.data() + 32, key.data(), key.size());
  return Payload::bytes(std::move(raw));
}

bool KvStore::parse_header(const Payload& header, std::string* key,
                           std::uint64_t* value_bytes,
                           std::uint64_t* sequence) {
  if (!header.has_data() || header.size() < 32) return false;
  auto v = header.view();
  std::uint64_t magic = 0;
  std::memcpy(&magic, v.data(), 8);
  if (magic != kMagic) return false;
  std::uint64_t key_len = 0;
  std::memcpy(sequence, v.data() + 8, 8);
  std::memcpy(&key_len, v.data() + 16, 8);
  std::memcpy(value_bytes, v.data() + 24, 8);
  if (key_len > kMaxKeyBytes || 32 + key_len > v.size()) return false;
  key->assign(reinterpret_cast<const char*>(v.data() + 32), key_len);
  return true;
}

sim::Task KvStore::put(std::string key, Payload value, bool* ok) {
  const Bytes span = record_span(Bytes{value.size()});
  if (key.size() > kMaxKeyBytes || head_ + span > base_ + capacity_) {
    if (ok != nullptr) *ok = false;
    co_return;
  }
  const Bytes addr = head_;
  head_ += span;
  const std::uint64_t seq = sequence_++;
  const Bytes value_bytes{value.size()};
  Payload record = Payload::concat(make_header(key, value_bytes, seq),
                                   std::move(value));
  co_await pe_.write(addr, std::move(record));
  index_[std::move(key)] = Entry{addr, value_bytes};
  ++puts_;
  if (ok != nullptr) *ok = true;
}

sim::Task KvStore::get(const std::string& key, Payload* out, bool* found) {
  ++gets_;
  auto it = index_.find(key);
  if (it == index_.end()) {
    *found = false;
    co_return;
  }
  *found = true;
  if (out != nullptr) {
    co_await pe_.read(it->second.record_addr + Bytes{kHeaderBytes},
                      it->second.value_bytes, out);
  }
}

sim::Task KvStore::compact(Bytes scratch_base, Bytes scratch_capacity,
                           Bytes* reclaimed_bytes) {
  const Bytes before = log_bytes_used();
  Bytes new_head = scratch_base;
  std::uint64_t new_seq = 0;
  std::unordered_map<std::string, Entry> new_index;
  // Stream every live record to the scratch log. Device-to-device copy goes
  // through the PE (read stream in, write stream out), so compaction runs on
  // the FPGA path like everything else. Walk the keys in sorted order: the
  // index is an unordered_map, and letting hash-iteration order decide the
  // rewritten log layout would make post-compaction timing and on-device
  // placement nondeterministic.
  std::vector<const std::string*> keys;
  keys.reserve(index_.size());
  for (const auto& [key, entry] : index_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* kp : keys) {
    const std::string& key = *kp;
    const Entry& entry = index_.at(key);
    Payload value;
    co_await pe_.read(entry.record_addr + Bytes{kHeaderBytes},
                      entry.value_bytes, &value);
    const Bytes span = record_span(entry.value_bytes);
    if (new_head + span > scratch_base + scratch_capacity) {
      // Scratch too small: abort without switching over.
      if (reclaimed_bytes != nullptr) *reclaimed_bytes = Bytes{};
      co_return;
    }
    Payload record = Payload::concat(
        make_header(key, entry.value_bytes, new_seq), std::move(value));
    co_await pe_.write(new_head, std::move(record));
    new_index[key] = Entry{new_head, entry.value_bytes};
    new_head += span;
    ++new_seq;
  }
  base_ = scratch_base;
  capacity_ = scratch_capacity;
  head_ = new_head;
  sequence_ = new_seq;
  index_ = std::move(new_index);
  if (reclaimed_bytes != nullptr) {
    *reclaimed_bytes = before - log_bytes_used();
  }
}

sim::Task KvStore::recover(std::uint64_t* records_out) {
  index_.clear();
  head_ = base_;
  sequence_ = 0;
  std::uint64_t records = 0;
  while (head_ + Bytes{kHeaderBytes} <= base_ + capacity_) {
    Payload header;
    co_await pe_.read(head_, Bytes{kHeaderBytes}, &header);
    std::string key;
    std::uint64_t value_bytes = 0;
    std::uint64_t seq = 0;
    if (!parse_header(header, &key, &value_bytes, &seq)) break;  // log end
    index_[std::move(key)] = Entry{head_, Bytes{value_bytes}};
    head_ += record_span(Bytes{value_bytes});
    sequence_ = std::max(sequence_, seq + 1);
    ++records;
  }
  if (records_out != nullptr) *records_out = records;
}

}  // namespace snacc::apps
