// The image-classification case study (Sec. 6): five competing
// implementations of "receive images over 100 G Ethernet, classify, store
// image + classification in an NVMe database".
//
//  * SnaccPipeline (x3 variants) -- Fig. 5: Ethernet RX -> scaler -> FINN
//    classifier PE -> database controller -> SNAcc NVMe streamer. After
//    init, no host involvement.
//  * SpdkPipeline -- classification stays on the FPGA, but the results are
//    DMAd to host memory and one CPU thread writes them out via SPDK
//    (batch-32 double buffering).
//  * GpuPipeline -- an NVIDIA A100 classifies batch-32 thumbnails; the CPU
//    thread shuttles data between NIC buffers, host DRAM, GPU and SSD
//    (GPUDirect Storage unavailable, Sec. 6.1 -> an extra host copy).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/image.hpp"
#include "eth/mac.hpp"
#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"
#include "spdk/driver.hpp"

namespace snacc::apps {

struct PcieTraffic {
  std::string path;
  std::uint64_t bytes = 0;
};

struct CaseStudyResult {
  TimePs elapsed;
  std::uint64_t images = 0;
  std::uint64_t bytes_ingested = 0;
  std::uint64_t bytes_stored = 0;
  double cpu_utilization = 0.0;
  std::uint64_t pause_frames = 0;
  std::uint64_t pcie_total_bytes = 0;
  std::vector<PcieTraffic> pcie_paths;
  bool ok = false;
  /// Set when cfg.real_data: the stored database was read back from the SSD
  /// media and every record verified (ids, classes, image bytes).
  bool db_verified = false;
  std::string db_error;

  double bandwidth_gb_s() const { return gb_per_s(bytes_ingested, elapsed); }
  double fps() const {
    return elapsed.is_zero() ? 0.0 : static_cast<double>(images) / to_s(elapsed);
  }
};

/// Runs the SNAcc pipeline (Fig. 5) for one buffer variant. `profile`
/// selects the testbed generation (default: the paper's Gen4 setup; pass
/// CalibrationProfile::gen5() for the Sec. 7 outlook).
CaseStudyResult run_snacc_case_study(core::Variant variant,
                                     const ImageStreamConfig& cfg,
                                     const CalibrationProfile& profile = {});

/// Runs the SPDK reference (FPGA classify, host stores).
CaseStudyResult run_spdk_case_study(const ImageStreamConfig& cfg);

/// Runs the GPU reference (A100 classify, host stores).
CaseStudyResult run_gpu_case_study(const ImageStreamConfig& cfg);

/// Validates the stored database on the SSD media: every record header
/// parses, ids are sequential, classes match the reference classifier, and
/// (for real data) the image bytes round-tripped. Used by tests.
bool verify_database(mem::SparseMemory& media, const ImageStreamConfig& cfg,
                     std::uint32_t records_to_check, std::string* error);

}  // namespace snacc::apps
