// NAND backend of the SSD model.
//
// Read path: pages are striped round-robin across dies. Each die pipelines
// page reads with an initiation interval that depends on access locality
// (multi-plane sequential streaming vs. random page reads) plus a tR latency
// with jitter. Random-read bandwidth is therefore *queueing-limited* at the
// dies -- which is what makes out-of-order completion matter (Fig. 4b).
//
// Write path: one ingest pipeline whose rate alternates between two program
// modes (the 990 PRO's measured 6.24 / 5.90 GB/s alternation, Fig. 4a) and
// which charges a per-command overhead plus a non-overlapped per-byte fetch
// overhead depending on where the payload came from (host DRAM / peer URAM /
// peer on-board DRAM; Sec. 5.2's P2P and DRAM-turnaround limits).
#pragma once

#include <cstdint>
#include <vector>

#include "common/calibration.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "sim/rate_server.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::nvme {

/// Where the controller fetches write payload from, for the non-overlapped
/// fetch-overhead term (see PcieProfile).
enum class FetchPath { kHostDram, kPeerUram, kPeerDram };

class NandBackend {
 public:
  NandBackend(sim::Simulator& sim, const SsdProfile& ssd,
              const PcieProfile& pcie, std::uint64_t seed = 0x990);

  /// Completes when the page at `lba` has been read out of the array. When
  /// an armed read-fault plan fires, `*uncorrectable` (if non-null) is set:
  /// the page's ECC failed and its data must not be transferred.
  sim::Task read_page(Lba lba, bool* uncorrectable = nullptr);

  /// Completes when `bytes` of a write command have been ingested (cache
  /// acknowledged). `path` selects the fetch-overhead term. When an armed
  /// program-fault plan fires, `*program_failed` (if non-null) is set.
  sim::Task ingest_write(Bytes bytes, FetchPath path,
                         bool* program_failed = nullptr);

  /// Fault injection (one event per page read / per ingested command).
  void set_read_fault_plan(const fault::FaultPlan& plan) {
    read_faults_ = fault::Injector(plan);
  }
  void set_program_fault_plan(const fault::FaultPlan& plan) {
    program_faults_ = fault::Injector(plan);
  }
  std::uint64_t read_faults_injected() const { return read_faults_.fired(); }
  std::uint64_t program_faults_injected() const {
    return program_faults_.fired();
  }

  /// The program mode flips whenever the write path goes idle long enough --
  /// so each large transfer lands wholly in one mode, alternating across
  /// transfers exactly like the paper's stacked bars. Tests can pin it.
  void force_mode(bool fast) {
    forced_mode_ = true;
    fast_mode_ = fast;
  }
  void unforce_mode() { forced_mode_ = false; }
  bool fast_mode() const { return fast_mode_; }

  double current_write_rate() const {
    return fast_mode_ ? ssd_.write_rate_fast_gb_s : ssd_.write_rate_slow_gb_s;
  }

  std::uint64_t pages_read() const { return pages_read_; }
  std::uint64_t bytes_ingested() const { return bytes_ingested_; }

 private:
  struct Die {
    TimePs next_free;
    Lba last_lba{~0ull};  // ~0 = no previous access
  };

  double fetch_overhead_rate(FetchPath path) const;
  void maybe_toggle_mode();

  sim::Simulator& sim_;
  SsdProfile ssd_;
  PcieProfile pcie_;
  Xoshiro256 rng_;
  std::vector<Die> dies_;
  sim::RateServer write_pipe_;
  TimePs last_write_end_;
  bool fast_mode_ = true;
  bool forced_mode_ = false;
  std::uint64_t pages_read_ = 0;
  std::uint64_t bytes_ingested_ = 0;
  fault::Injector read_faults_;
  fault::Injector program_faults_;

  /// Idle gap after which the next write burst re-rolls the program mode.
  static constexpr TimePs kModeIdleGap = us(200);
};

}  // namespace snacc::nvme
