// NVMe protocol structures (subset of NVMe 1.4 needed by SNAcc): 64-byte
// submission entries, 16-byte completion entries with phase tags, admin and
// I/O opcodes, controller registers and doorbell layout.
//
// Entries are encoded to/from real bytes so queues live in simulated memory
// exactly as on hardware: the controller *fetches* SQEs over PCIe and the
// host/streamer decodes CQEs it finds in its completion-queue memory.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/payload.hpp"
#include "common/units.hpp"

namespace snacc::nvme {

inline constexpr std::uint32_t kSqeSize = 64;
inline constexpr std::uint32_t kCqeSize = 16;
inline constexpr std::uint64_t kLbaSize = 4096;  // 4 KiB-formatted namespace

enum class IoOpcode : std::uint8_t {
  kFlush = 0x00,
  kWrite = 0x01,
  kRead = 0x02,
};

enum class AdminOpcode : std::uint8_t {
  kDeleteIoSq = 0x00,
  kCreateIoSq = 0x01,
  kDeleteIoCq = 0x04,
  kCreateIoCq = 0x05,
  kIdentify = 0x06,
  kSetFeatures = 0x09,
};

enum class Status : std::uint16_t {
  kSuccess = 0x0,
  kInvalidOpcode = 0x1,
  kInvalidField = 0x2,
  kDataTransferError = 0x4,
  kInternalError = 0x6,
  kInvalidQueueId = 0x101,
  kInvalidQueueSize = 0x102,
  kLbaOutOfRange = 0x180,
  // Media & Data Integrity errors (SCT=2), as (sct << 8) | sc like the
  // generic codes above: a failed NAND program and an uncorrectable read.
  kWriteFault = 0x280,
  kUnrecoveredReadError = 0x281,
  // Synthesized locally by the SNAcc watchdog when a completion is lost
  // (e.g. the CQE's posted write was dropped); never appears on the wire.
  kWatchdogTimeout = 0x3F0,
};

/// Submission queue entry. Field offsets follow the spec layout: CDW0 holds
/// opcode and CID, DPTR holds PRP1/PRP2, CDW10/11 the starting LBA and CDW12
/// the 0-based logical block count.
struct SubmissionEntry {
  std::uint8_t opcode = 0;
  Cid cid;
  std::uint32_t nsid = 1;
  BusAddr prp1;
  BusAddr prp2;
  Lba slba;
  std::uint16_t nlb = 0;      // 0-based: nlb=0 -> 1 block
  std::uint32_t cdw10 = 0;    // admin commands reuse these directly
  std::uint32_t cdw11 = 0;

  Bytes data_bytes() const {
    return Bytes{(static_cast<std::uint64_t>(nlb) + 1) * kLbaSize};
  }

  std::array<std::byte, kSqeSize> encode() const {
    std::array<std::byte, kSqeSize> raw{};
    auto put = [&raw](std::size_t off, const auto& v) {
      std::memcpy(raw.data() + off, &v, sizeof(v));
    };
    const std::uint32_t cdw0 = static_cast<std::uint32_t>(opcode) |
                               (static_cast<std::uint32_t>(cid.value()) << 16);
    put(0, cdw0);
    put(4, nsid);
    put(24, prp1.value());
    put(32, prp2.value());
    // For I/O commands CDW10/11 encode the SLBA; admin commands carry their
    // own CDW10/11. Both views share the same bytes, so encode SLBA first
    // and let explicit cdw10/11 (nonzero) win for admin commands.
    put(40, slba.value());
    if (cdw10 != 0 || cdw11 != 0) {
      put(40, cdw10);
      put(44, cdw11);
    }
    const std::uint32_t cdw12 = nlb;
    put(48, cdw12);
    return raw;
  }

  static SubmissionEntry decode(std::span<const std::byte> raw) {
    SubmissionEntry e;
    auto get = [&raw](std::size_t off, auto& v) {
      std::memcpy(&v, raw.data() + off, sizeof(v));
    };
    std::uint32_t cdw0 = 0;
    get(0, cdw0);
    e.opcode = static_cast<std::uint8_t>(cdw0 & 0xFF);
    e.cid = Cid{static_cast<std::uint16_t>(cdw0 >> 16)};
    get(4, e.nsid);
    std::uint64_t prp1 = 0, prp2 = 0, slba = 0;
    get(24, prp1);
    get(32, prp2);
    get(40, slba);
    e.prp1 = BusAddr{prp1};
    e.prp2 = BusAddr{prp2};
    e.slba = Lba{slba};
    get(40, e.cdw10);
    get(44, e.cdw11);
    std::uint32_t cdw12 = 0;
    get(48, cdw12);
    e.nlb = static_cast<std::uint16_t>(cdw12 & 0xFFFF);
    return e;
  }
};

/// Completion queue entry with phase tag (bit 0 of the status word flips on
/// every queue wrap so pollers can detect new entries without a doorbell).
struct CompletionEntry {
  std::uint32_t dw0 = 0;
  std::uint16_t sq_head = 0;
  std::uint16_t sq_id = 0;
  Cid cid;
  Status status = Status::kSuccess;
  bool phase = false;

  std::array<std::byte, kCqeSize> encode() const {
    std::array<std::byte, kCqeSize> raw{};
    auto put = [&raw](std::size_t off, const auto& v) {
      std::memcpy(raw.data() + off, &v, sizeof(v));
    };
    put(0, dw0);
    put(8, sq_head);
    put(10, sq_id);
    put(12, cid.value());
    const std::uint16_t sf = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(status) << 1) | (phase ? 1 : 0));
    put(14, sf);
    return raw;
  }

  static CompletionEntry decode(std::span<const std::byte> raw) {
    CompletionEntry e;
    auto get = [&raw](std::size_t off, auto& v) {
      std::memcpy(&v, raw.data() + off, sizeof(v));
    };
    get(0, e.dw0);
    get(8, e.sq_head);
    get(10, e.sq_id);
    std::uint16_t cid = 0;
    get(12, cid);
    e.cid = Cid{cid};
    std::uint16_t sf = 0;
    get(14, sf);
    e.phase = (sf & 1) != 0;
    e.status = static_cast<Status>(sf >> 1);
    return e;
  }
};

/// Controller register offsets within BAR0 (BAR-local byte offsets).
namespace reg {
inline constexpr Bytes kCap{0x00};    // capabilities (RO)
inline constexpr Bytes kCc{0x14};     // controller configuration
inline constexpr Bytes kCsts{0x1C};   // controller status
inline constexpr Bytes kAqa{0x24};    // admin queue attributes
inline constexpr Bytes kAsq{0x28};    // admin SQ base
inline constexpr Bytes kAcq{0x30};    // admin CQ base
inline constexpr Bytes kDoorbellBase{0x1000};
inline constexpr std::uint64_t kDoorbellStride = 8;  // CAP.DSTRD = 0

/// The *only* sanctioned way to form a doorbell offset; snacc-lint flags
/// raw `kDoorbellBase + ...` arithmetic outside this header.
constexpr Bytes sq_tail_doorbell(std::uint16_t qid) {
  return kDoorbellBase + Bytes{2ull * qid * kDoorbellStride};
}
constexpr Bytes cq_head_doorbell(std::uint16_t qid) {
  return kDoorbellBase + Bytes{(2ull * qid + 1) * kDoorbellStride};
}
}  // namespace reg

/// The subset of Identify-Controller data SNAcc needs, serialized into the
/// 4 kB identify page.
struct IdentifyController {
  std::uint64_t namespace_blocks = 0;  // NSZE of namespace 1
  std::uint32_t max_transfer_bytes = 0;
  std::uint16_t max_queue_entries = 0;
  std::uint16_t num_io_queues = 0;

  Payload encode() const {
    std::vector<std::byte> raw(kPageSize, std::byte{0});
    std::memcpy(raw.data() + 0, &namespace_blocks, 8);
    std::memcpy(raw.data() + 8, &max_transfer_bytes, 4);
    std::memcpy(raw.data() + 12, &max_queue_entries, 2);
    std::memcpy(raw.data() + 14, &num_io_queues, 2);
    return Payload::bytes(std::move(raw));
  }

  static IdentifyController decode(const Payload& p) {
    IdentifyController id;
    if (!p.has_data() || p.size() < 16) return id;
    auto v = p.view();
    std::memcpy(&id.namespace_blocks, v.data() + 0, 8);
    std::memcpy(&id.max_transfer_bytes, v.data() + 8, 4);
    std::memcpy(&id.max_queue_entries, v.data() + 12, 2);
    std::memcpy(&id.num_io_queues, v.data() + 14, 2);
    return id;
  }
};

}  // namespace snacc::nvme
