// Host-side (and streamer-side) views of NVMe submission/completion rings.
//
// A SqRing tracks the producer state of a submission queue: tail advance,
// free-slot accounting against the head the controller reports in CQEs. A
// CqRing tracks the consumer state of a completion queue: expected phase tag
// and head advance. Both compute entry addresses in whatever memory the ring
// lives in (host DRAM for SPDK, the FPGA FIFO/ROB windows for SNAcc).
#pragma once

#include <cassert>
#include <cstdint>

#include "nvme/spec.hpp"

namespace snacc::nvme {

struct QueueConfig {
  std::uint16_t qid = 0;
  BusAddr base;             // global PCIe address of slot 0
  std::uint16_t entries = 64;
};

class SqRing {
 public:
  explicit SqRing(QueueConfig cfg) : cfg_(cfg) {}

  const QueueConfig& config() const { return cfg_; }
  std::uint16_t tail() const { return tail_; }
  std::uint16_t head() const { return head_; }

  bool full() const {
    return static_cast<std::uint16_t>((tail_ + 1) % cfg_.entries) == head_;
  }
  std::uint16_t free_slots() const {
    return static_cast<std::uint16_t>(
        (head_ + cfg_.entries - tail_ - 1) % cfg_.entries);
  }
  std::uint16_t in_flight() const {
    return static_cast<std::uint16_t>((tail_ + cfg_.entries - head_) % cfg_.entries);
  }

  /// Address of the slot the next entry goes into.
  BusAddr next_slot_addr() const {
    return cfg_.base + Bytes{static_cast<std::uint64_t>(tail_) * kSqeSize};
  }

  /// Claims the tail slot; returns the new tail to write to the doorbell.
  std::uint16_t advance_tail() {
    assert(!full());
    tail_ = static_cast<std::uint16_t>((tail_ + 1) % cfg_.entries);
    return tail_;
  }

  /// Updates the head from a completion's sq_head field, freeing slots.
  void update_head(std::uint16_t sq_head) { head_ = sq_head % cfg_.entries; }

 private:
  QueueConfig cfg_;
  std::uint16_t tail_ = 0;
  std::uint16_t head_ = 0;
};

class CqRing {
 public:
  explicit CqRing(QueueConfig cfg) : cfg_(cfg) {}

  const QueueConfig& config() const { return cfg_; }
  std::uint16_t head() const { return head_; }
  bool expected_phase() const { return phase_; }

  /// Address of the next entry to poll.
  BusAddr head_addr() const {
    return cfg_.base + Bytes{static_cast<std::uint64_t>(head_) * kCqeSize};
  }

  /// True if a freshly-read entry at the head is new (phase matches).
  bool is_new(const CompletionEntry& e) const { return e.phase == phase_; }

  /// Consumes the head entry; returns the new head for the doorbell write.
  std::uint16_t advance() {
    head_ = static_cast<std::uint16_t>((head_ + 1) % cfg_.entries);
    if (head_ == 0) phase_ = !phase_;
    return head_;
  }

 private:
  QueueConfig cfg_;
  std::uint16_t head_ = 0;
  bool phase_ = true;  // controller writes phase=1 on the first pass
};

}  // namespace snacc::nvme
