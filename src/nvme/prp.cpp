#include "nvme/prp.hpp"

namespace snacc::nvme {

std::vector<std::vector<std::uint64_t>> build_prp_lists(
    BusAddr buffer_base, Bytes len, BusAddr list_page_base) {
  std::vector<std::vector<std::uint64_t>> lists;
  const std::uint64_t pages = prp_page_count(len);
  if (pages <= 2) return lists;  // direct PRP1/PRP2, no list needed

  // Entries for pages [1, pages): page 0 is PRP1. Each list page holds up to
  // 512 entries, but when more remain, the last slot chains to the next list.
  std::uint64_t next_page = 1;
  BusAddr list_addr = list_page_base;
  while (next_page < pages) {
    std::vector<std::uint64_t> list;
    const std::uint64_t remaining = pages - next_page;
    const bool needs_chain = remaining > kPrpEntriesPerList;
    const std::uint64_t take =
        needs_chain ? kPrpEntriesPerList - 1 : remaining;
    for (std::uint64_t i = 0; i < take; ++i) {
      list.push_back((buffer_base + Bytes{(next_page + i) * kPageSize}).value());
    }
    next_page += take;
    if (needs_chain) {
      list_addr += Bytes{kPageSize};
      list.push_back(list_addr.value());  // chain pointer in the final slot
    }
    lists.push_back(std::move(list));
  }
  return lists;
}

sim::Task PrpWalker::walk(BusAddr prp1, BusAddr prp2, Bytes len,
                          std::vector<BusAddr>& out) {
  const std::uint64_t pages = prp_page_count(len);
  out.clear();
  out.reserve(pages);
  if (pages == 0) co_return;

  out.push_back(prp1);
  if (pages == 1) co_return;
  if (pages == 2) {
    out.push_back(prp2);
    co_return;
  }

  // PRP2 points to a list page. Fetch entries one by one (the controller
  // actually bursts these; the burst is modeled by the reader's rate
  // charging, see Ssd::read_prp_entry).
  BusAddr list_base = prp2;
  std::uint64_t index_in_list = 0;
  while (out.size() < pages) {
    const BusAddr entry_addr = list_base + Bytes{index_in_list * 8};
    auto fut = reader_(entry_addr);
    const std::uint64_t entry = co_await fut;
    const bool last_slot = index_in_list == kPrpEntriesPerList - 1;
    const bool more_needed = out.size() < pages;
    if (last_slot && more_needed && out.size() + 1 < pages) {
      // Chain pointer to the next list page.
      list_base = BusAddr{entry};
      index_in_list = 0;
      continue;
    }
    out.push_back(BusAddr{entry});
    ++index_in_list;
  }
}

}  // namespace snacc::nvme
