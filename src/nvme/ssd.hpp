// NVMe SSD device model (calibrated to a Samsung 990 PRO 2 TB, Sec. 5).
//
// The Ssd is a PCIe Target exposing real controller registers and doorbells
// in its BAR. It autonomously fetches 64-byte submission entries from
// wherever the submission queue lives (host DRAM for SPDK, the SNAcc
// streamer's FPGA FIFO window for the FPGA path), walks PRPs -- including
// list reads, which on the FPGA hit the streamer's on-the-fly PRP engine --
// moves payload by DMA over the fabric, executes on the NAND backend, and
// posts phase-tagged completions. Commands execute concurrently and complete
// out of order, exactly the behaviour the SNAcc reorder buffer has to absorb.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/calibration.hpp"
#include "fault/fault.hpp"
#include "mem/sparse_memory.hpp"
#include "nvme/nand.hpp"
#include "nvme/prp.hpp"
#include "nvme/queues.hpp"
#include "nvme/spec.hpp"
#include "pcie/fabric.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::nvme {

class Ssd final : public pcie::Target {
 public:
  Ssd(sim::Simulator& sim, pcie::Fabric& fabric, const SsdProfile& profile,
      std::uint64_t capacity_bytes = 2'000'000'000'000ull,
      std::uint64_t seed = 0x990);
  ~Ssd() override;

  /// Registers the controller BAR at `bar_base` on its own fabric port.
  void attach(pcie::Addr bar_base, double link_gb_s);

  pcie::PortId port() const { return port_; }
  pcie::Addr bar_base() const { return bar_base_; }
  static constexpr Bytes kBarSize{16 * KiB};

  // --- pcie::Target --------------------------------------------------------
  sim::Future<Payload> mem_read(Bytes local, Bytes len) override;
  sim::Future<sim::Done> mem_write(Bytes local, Payload data) override;

  // --- direct (test) configuration ----------------------------------------
  /// Creates an I/O queue pair without going through the admin queue; used
  /// by unit tests and by setups that model pre-initialized controllers.
  void create_io_queues_direct(const QueueConfig& sq, const QueueConfig& cq);

  // --- introspection -------------------------------------------------------
  mem::SparseMemory& media() { return media_; }
  NandBackend& nand() { return nand_; }
  const SsdProfile& profile() const { return profile_; }
  bool ready() const { return csts_ready_; }
  std::uint64_t commands_completed() const { return commands_completed_; }
  std::uint64_t read_errors() const { return read_errors_; }
  std::uint64_t write_errors() const { return write_errors_; }
  std::uint64_t error_cqes() const { return error_cqes_; }
  std::uint64_t namespace_blocks() const { return media_.size() / kLbaSize; }
  std::uint64_t flushes_completed() const { return flushes_completed_; }
  /// Blocks currently acknowledged but not yet destaged to NAND (volatile).
  std::uint64_t dirty_cache_blocks() const { return dirty_fifo_.size(); }

  // --- durability tier (docs/DURABILITY.md) --------------------------------
  /// Power loss: every block still in the volatile write cache reverts to
  /// its pre-write (destaged) contents, and completions for commands that
  /// were in flight at the instant of loss are never posted -- the host-side
  /// watchdog/recovery machinery has to notice them. The controller itself
  /// comes back ready (modeling a fast reinit that re-establishes the same
  /// queue configuration), so recovery code can immediately re-drive I/O.
  void power_cycle();
  std::uint64_t power_cycles() const { return power_cycles_; }
  std::uint64_t lost_cache_blocks() const { return lost_cache_blocks_; }
  std::uint64_t suppressed_cqes() const { return suppressed_cqes_; }

  // --- fault injection -----------------------------------------------------
  /// Controller-internal failures: one event per I/O command; a fired event
  /// completes the command with Status::kInternalError without executing.
  void set_internal_fault_plan(const fault::FaultPlan& plan) {
    internal_faults_ = fault::Injector(plan);
  }
  std::uint64_t internal_faults_injected() const {
    return internal_faults_.fired();
  }

  /// Device-crash faults: one event per write command. A fired event models
  /// power loss mid-destage -- a seeded prefix of the outstanding write
  /// cache reaches NAND (possibly tearing a record at an arbitrary block
  /// boundary), the rest is lost, and the command's CQE is never posted.
  /// Deterministic per plan+seed; zero-cost when disarmed.
  void set_crash_plan(const fault::FaultPlan& plan) {
    crash_faults_ = fault::Injector(plan);
    crash_rng_ = Xoshiro256(plan.seed ^ 0xC4A5'11ull);
  }
  std::uint64_t crash_faults_injected() const { return crash_faults_.fired(); }

 private:
  struct IoQueue {
    std::uint16_t sqid = 0;
    std::uint16_t cqid = 0;
    pcie::Addr sq_base;
    pcie::Addr cq_base;
    std::uint16_t sq_entries = 0;
    std::uint16_t cq_entries = 0;
    std::uint16_t sq_head = 0;     // controller fetch position
    std::uint16_t sq_tail_db = 0;  // last doorbell from producer
    std::uint16_t cq_tail = 0;     // controller post position
    bool cq_phase = true;
    std::uint16_t cq_head_db = 0;  // consumer progress
    std::unique_ptr<sim::Gate> sq_work;    // opened by SQ tail doorbell
    std::unique_ptr<sim::Gate> cq_space;   // opened by CQ head doorbell
    bool is_admin = false;
    bool deleted = false;
  };

  // Register / doorbell plumbing.
  sim::Task handle_register_write(Bytes local, Payload data);
  Payload read_register(Bytes local, Bytes len) const;
  void enable_controller();

  // Queue workers.
  sim::Task sq_worker(IoQueue& q);
  sim::Task execute_io(IoQueue& q, SubmissionEntry sqe);
  sim::Task execute_admin(IoQueue& q, SubmissionEntry sqe);
  sim::Task execute_read(IoQueue& q, SubmissionEntry sqe, std::uint64_t epoch);
  sim::Task execute_write(IoQueue& q, SubmissionEntry sqe, std::uint64_t epoch);
  /// Posts a completion; `sq_head` is read from the queue at post time
  /// (monotonic fetch progress, as real controllers report).
  sim::Task post_cqe(IoQueue& q, Cid cid, Status status,
                     std::uint32_t dw0 = 0);
  /// post_cqe, unless a power cycle happened after `epoch` was captured --
  /// a command in flight across power loss completes into the void.
  sim::Task finish_io(IoQueue& q, Cid cid, Status status, std::uint64_t epoch);

  sim::Task page_read_to_buffer(Lba lba, pcie::Addr dst, sim::WaitGroup& wg,
                                bool& uncorrectable);
  sim::Task page_fetch_from_buffer(Lba lba, pcie::Addr src, sim::WaitGroup& wg,
                                   bool& ok, std::uint64_t epoch);

  // Volatile-write-cache bookkeeping (durability tier). Media always holds
  // the latest acknowledged contents -- the cache is modeled as an *undo
  // log*: the pre-write contents of every block younger than the cache
  // window, restored wholesale on power loss. Fault-free runs therefore
  // stay bit-identical (no timing, no content change) and integrity tests
  // reading media() keep seeing the newest data.
  void note_block_write(Lba lba);
  void destage_oldest();
  void flush_cache();
  sim::Task resolve_prps(const SubmissionEntry& sqe,
                         std::vector<BusAddr>& pages);
  FetchPath classify_source(pcie::Addr addr) const;

  sim::Simulator& sim_;
  pcie::Fabric& fabric_;
  SsdProfile profile_;
  mem::SparseMemory media_;
  NandBackend nand_;
  pcie::PortId port_ = pcie::kInvalidPort;
  pcie::Addr bar_base_;

  // Registers.
  std::uint32_t cc_ = 0;
  bool csts_ready_ = false;
  std::uint32_t aqa_ = 0;
  pcie::Addr asq_;
  pcie::Addr acq_;

  std::map<std::uint16_t, std::unique_ptr<IoQueue>> queues_;  // by sqid; 0=admin
  std::map<std::uint16_t, QueueConfig> created_cqs_;  // CQs awaiting their SQ
  std::unique_ptr<sim::Semaphore> exec_slots_;
  std::unique_ptr<sim::RateServer> cmd_pipe_;  // SQE fetch/decode pipeline

  std::uint64_t commands_completed_ = 0;
  std::uint64_t read_errors_ = 0;
  std::uint64_t write_errors_ = 0;
  std::uint64_t error_cqes_ = 0;
  fault::Injector internal_faults_;

  // Durability tier: volatile write cache (undo log) + crash injection.
  // undo_ is keyed lookup only (never iterated); restore order comes from
  // dirty_fifo_, so unordered iteration order cannot leak into behaviour.
  std::unordered_map<std::uint64_t, Payload> undo_;  // by lba: pre-write bytes
  std::deque<Lba> dirty_fifo_;                       // destage (write) order
  fault::Injector crash_faults_;
  Xoshiro256 crash_rng_{0xC4A5'11ull};  // seeded torn-destage point
  std::uint64_t crash_epoch_ = 0;
  std::uint64_t power_cycles_ = 0;
  std::uint64_t lost_cache_blocks_ = 0;
  std::uint64_t suppressed_cqes_ = 0;
  std::uint64_t flushes_completed_ = 0;
};

}  // namespace snacc::nvme
