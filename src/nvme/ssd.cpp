#include "nvme/ssd.hpp"

#include <cassert>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace snacc::nvme {

namespace {

/// Decodes a little-endian integer from the head of a (real) payload.
template <class T>
T decode_scalar(const Payload& p) {
  T v{};
  if (p.has_data() && p.size() >= sizeof(T)) {
    std::memcpy(&v, p.view().data(), sizeof(T));
  }
  return v;
}

/// Maximum SQEs fetched in one burst read (controllers batch-fetch).
constexpr std::uint16_t kSqeFetchBatch = 16;

/// Controller-wide in-flight command limit.
constexpr int kExecSlots = 256;

/// SQE decode pipeline: one command each 500 ns (~2 M IOPS ceiling).
constexpr TimePs kCmdDecodeInterval = ns(500);

}  // namespace

Ssd::Ssd(sim::Simulator& sim, pcie::Fabric& fabric, const SsdProfile& profile,
         std::uint64_t capacity_bytes, std::uint64_t seed)
    : sim_(sim),
      fabric_(fabric),
      profile_(profile),
      media_(capacity_bytes),
      nand_(sim, profile, fabric.profile(), seed) {
  exec_slots_ = std::make_unique<sim::Semaphore>(sim_, kExecSlots);
  cmd_pipe_ = std::make_unique<sim::RateServer>(sim_, /*gb_s=*/1e9,
                                                kCmdDecodeInterval);
}

Ssd::~Ssd() = default;

void Ssd::attach(pcie::Addr bar_base, double link_gb_s) {
  bar_base_ = bar_base;
  port_ = fabric_.add_port("nvme-ssd", link_gb_s);
  fabric_.map(bar_base, kBarSize, this, port_, pcie::MemKind::kDevice);
}

// ---------------------------------------------------------------------------
// Registers and doorbells

Payload Ssd::read_register(Bytes local, Bytes len) const {
  std::uint64_t value = 0;
  if (local == reg::kCap) {
    // MQES (0-based) in [15:0]; DSTRD=0; CSS=NVM.
    value = static_cast<std::uint64_t>(profile_.max_queue_entries - 1);
  } else if (local == reg::kCc) {
    value = cc_;
  } else if (local == reg::kCsts) {
    value = csts_ready_ ? 1 : 0;
  } else if (local == reg::kAqa) {
    value = aqa_;
  } else if (local == reg::kAsq) {
    value = asq_.value();
  } else if (local == reg::kAcq) {
    value = acq_.value();
  }
  std::vector<std::byte> raw(len.value(), std::byte{0});
  std::memcpy(raw.data(), &value, std::min<std::uint64_t>(len.value(), 8));
  return Payload::bytes(std::move(raw));
}

sim::Future<Payload> Ssd::mem_read(Bytes local, Bytes len) {
  sim::Promise<Payload> p(sim_);
  p.set(read_register(local, len));
  return p.future();
}

sim::Future<sim::Done> Ssd::mem_write(Bytes local, Payload data) {
  sim::Promise<sim::Done> p(sim_);
  auto fut = p.future();
  // Register/doorbell writes take effect in controller order but complete
  // immediately from the fabric's point of view (posted).
  sim_.spawn(handle_register_write(local, std::move(data)));
  p.set(sim::Done{});
  return fut;
}

sim::Task Ssd::handle_register_write(Bytes local, Payload data) {
  // Device side of the doorbell protocol: this *decoder* is the one place
  // besides spec.hpp that may touch the raw doorbell layout.
  if (local >= reg::kDoorbellBase) {  // snacc-lint: allow(raw-doorbell)
    const std::uint64_t idx =  // snacc-lint: allow(raw-doorbell)
        (local - reg::kDoorbellBase).value() / reg::kDoorbellStride;
    const std::uint16_t qid = static_cast<std::uint16_t>(idx / 2);
    const bool is_cq_head = (idx % 2) == 1;
    const std::uint32_t value = decode_scalar<std::uint32_t>(data);
    assert(data.has_data() && "doorbell writes must carry real values");
    auto it = queues_.find(qid);
    if (it == queues_.end()) co_return;  // doorbell to nonexistent queue
    IoQueue& q = *it->second;
    if (is_cq_head) {
      q.cq_head_db = static_cast<std::uint16_t>(value % q.cq_entries);
      q.cq_space->open();
    } else {
      q.sq_tail_db = static_cast<std::uint16_t>(value % q.sq_entries);
      q.sq_work->open();
    }
    co_return;
  }

  const std::uint32_t v32 = decode_scalar<std::uint32_t>(data);
  if (local == reg::kCc) {
    cc_ = v32;
    if ((cc_ & 1) != 0 && !csts_ready_) {
      co_await sim_.delay(us(50));  // controller init time
      enable_controller();
    } else if ((cc_ & 1) == 0) {
      csts_ready_ = false;
    }
  } else if (local == reg::kAqa) {
    aqa_ = v32;
  } else if (local == reg::kAsq) {
    asq_ = pcie::Addr{decode_scalar<std::uint64_t>(data)};
  } else if (local == reg::kAcq) {
    acq_ = pcie::Addr{decode_scalar<std::uint64_t>(data)};
  }  // unimplemented registers: ignored
}

void Ssd::enable_controller() {
  csts_ready_ = true;
  auto q = std::make_unique<IoQueue>();
  q->sqid = 0;
  q->cqid = 0;
  q->sq_base = asq_;
  q->cq_base = acq_;
  q->sq_entries = static_cast<std::uint16_t>((aqa_ & 0xFFF) + 1);
  q->cq_entries = static_cast<std::uint16_t>(((aqa_ >> 16) & 0xFFF) + 1);
  q->sq_work = std::make_unique<sim::Gate>(sim_, false);
  q->cq_space = std::make_unique<sim::Gate>(sim_, true);
  q->is_admin = true;
  IoQueue& ref = *q;
  queues_[0] = std::move(q);
  sim_.spawn(sq_worker(ref));
}

void Ssd::create_io_queues_direct(const QueueConfig& sq, const QueueConfig& cq) {
  assert(sq.qid != 0 && "qid 0 is the admin queue");
  auto q = std::make_unique<IoQueue>();
  q->sqid = sq.qid;
  q->cqid = cq.qid;
  q->sq_base = sq.base;
  q->cq_base = cq.base;
  q->sq_entries = sq.entries;
  q->cq_entries = cq.entries;
  q->sq_work = std::make_unique<sim::Gate>(sim_, false);
  q->cq_space = std::make_unique<sim::Gate>(sim_, true);
  IoQueue& ref = *q;
  queues_[sq.qid] = std::move(q);
  sim_.spawn(sq_worker(ref));
}

// ---------------------------------------------------------------------------
// Submission queue worker

sim::Task Ssd::sq_worker(IoQueue& q) {
  while (!q.deleted) {
    while (q.sq_head == q.sq_tail_db && !q.deleted) {
      q.sq_work->close();
      co_await q.sq_work->opened();
    }
    if (q.deleted) co_return;

    // Batch-fetch contiguous SQEs up to the ring end.
    const std::uint16_t avail = static_cast<std::uint16_t>(
        (q.sq_tail_db + q.sq_entries - q.sq_head) % q.sq_entries);
    const std::uint16_t to_ring_end =
        static_cast<std::uint16_t>(q.sq_entries - q.sq_head);
    const std::uint16_t batch =
        std::min({avail, to_ring_end, kSqeFetchBatch});

    auto rr = co_await fabric_.read(
        port_, q.sq_base + Bytes{static_cast<std::uint64_t>(q.sq_head) * kSqeSize},
        Bytes{static_cast<std::uint64_t>(batch) * kSqeSize}, /*control=*/true);
    if (!rr.ok) {
      ++read_errors_;
      co_await sim_.delay(us(1));
      continue;
    }
    for (std::uint16_t i = 0; i < batch; ++i) {
      SubmissionEntry sqe;
      if (rr.data.has_data()) {
        sqe = SubmissionEntry::decode(
            rr.data.view().subspan(static_cast<std::size_t>(i) * kSqeSize,
                                   kSqeSize));
      }
      q.sq_head = static_cast<std::uint16_t>((q.sq_head + 1) % q.sq_entries);
      sim_.trace(sim::TraceCat::kNvmeSubmit, "sqe-fetched", q.sqid,
                 sqe.cid.value());
      co_await cmd_pipe_->acquire(0);  // decode pipeline
      if (q.is_admin) {
        sim_.spawn(execute_admin(q, sqe));
      } else {
        sim_.spawn(execute_io(q, sqe));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Admin command execution

sim::Task Ssd::execute_admin(IoQueue& q, SubmissionEntry sqe) {
  co_await sim_.delay(profile_.cmd_process);
  switch (static_cast<AdminOpcode>(sqe.opcode)) {
    case AdminOpcode::kCreateIoCq: {
      const std::uint16_t qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
      const std::uint16_t entries =
          static_cast<std::uint16_t>((sqe.cdw10 >> 16) + 1);
      if (qid == 0 || entries < 2 || entries > profile_.max_queue_entries) {
        co_await post_cqe(q, sqe.cid, Status::kInvalidQueueSize);
        co_return;
      }
      created_cqs_[qid] = QueueConfig{qid, sqe.prp1, entries};
      co_await post_cqe(q, sqe.cid, Status::kSuccess);
      co_return;
    }
    case AdminOpcode::kCreateIoSq: {
      const std::uint16_t qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
      const std::uint16_t entries =
          static_cast<std::uint16_t>((sqe.cdw10 >> 16) + 1);
      const std::uint16_t cqid = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
      auto cq = created_cqs_.find(cqid);
      if (qid == 0 || cq == created_cqs_.end() || queues_.contains(qid)) {
        co_await post_cqe(q, sqe.cid, Status::kInvalidQueueId);
        co_return;
      }
      if (entries < 2 || entries > profile_.max_queue_entries) {
        co_await post_cqe(q, sqe.cid, Status::kInvalidQueueSize);
        co_return;
      }
      create_io_queues_direct(QueueConfig{qid, sqe.prp1, entries}, cq->second);
      co_await post_cqe(q, sqe.cid, Status::kSuccess);
      co_return;
    }
    case AdminOpcode::kDeleteIoSq: {
      const std::uint16_t qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
      auto it = queues_.find(qid);
      if (qid == 0 || it == queues_.end()) {
        co_await post_cqe(q, sqe.cid, Status::kInvalidQueueId);
        co_return;
      }
      it->second->deleted = true;
      it->second->sq_work->open();  // let the worker observe deletion
      co_await post_cqe(q, sqe.cid, Status::kSuccess);
      co_return;
    }
    case AdminOpcode::kDeleteIoCq: {
      const std::uint16_t qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xFFFF);
      if (created_cqs_.erase(qid) == 0) {
        co_await post_cqe(q, sqe.cid, Status::kInvalidQueueId);
        co_return;
      }
      co_await post_cqe(q, sqe.cid, Status::kSuccess);
      co_return;
    }
    case AdminOpcode::kIdentify: {
      IdentifyController id;
      id.namespace_blocks = namespace_blocks();
      id.max_transfer_bytes = static_cast<std::uint32_t>(profile_.max_transfer.value());
      id.max_queue_entries = profile_.max_queue_entries;
      id.num_io_queues = 16;
      co_await fabric_.write(port_, sqe.prp1, id.encode());
      co_await post_cqe(q, sqe.cid, Status::kSuccess);
      co_return;
    }
    case AdminOpcode::kSetFeatures:
      // Number-of-queues etc.: echo the request back in DW0.
      co_await post_cqe(q, sqe.cid, Status::kSuccess, sqe.cdw11);
      co_return;
  }
  co_await post_cqe(q, sqe.cid, Status::kInvalidOpcode);
}

// ---------------------------------------------------------------------------
// I/O command execution

sim::Task Ssd::execute_io(IoQueue& q, SubmissionEntry sqe) {
  co_await exec_slots_->acquire();
  co_await sim_.delay(profile_.cmd_process);
  // Commands in flight when power is lost must not complete: capture the
  // crash epoch at execution start; finish_io drops the CQE on a mismatch.
  const std::uint64_t epoch = crash_epoch_;

  const std::uint64_t blocks = static_cast<std::uint64_t>(sqe.nlb) + 1;
  const bool is_flush = static_cast<IoOpcode>(sqe.opcode) == IoOpcode::kFlush;
  if (!is_flush && sqe.slba + blocks > Lba{namespace_blocks()}) {
    co_await finish_io(q, sqe.cid, Status::kLbaOutOfRange, epoch);
    exec_slots_->release();
    co_return;
  }
  if (!is_flush && sqe.data_bytes() > profile_.max_transfer) {
    co_await finish_io(q, sqe.cid, Status::kInvalidField, epoch);
    exec_slots_->release();
    co_return;
  }
  if (internal_faults_.armed() && internal_faults_.fire()) {
    // Injected controller-internal failure: the command dies before touching
    // media, completing with a generic internal error.
    co_await finish_io(q, sqe.cid, Status::kInternalError, epoch);
    exec_slots_->release();
    co_return;
  }

  switch (static_cast<IoOpcode>(sqe.opcode)) {
    case IoOpcode::kRead:
      co_await execute_read(q, sqe, epoch);
      break;
    case IoOpcode::kWrite:
      co_await execute_write(q, sqe, epoch);
      break;
    case IoOpcode::kFlush:
      co_await sim_.delay(us(20));
      flush_cache();
      co_await finish_io(q, sqe.cid, Status::kSuccess, epoch);
      break;
    default:
      co_await finish_io(q, sqe.cid, Status::kInvalidOpcode, epoch);
      break;
  }
  exec_slots_->release();
}

// ---------------------------------------------------------------------------
// Volatile write cache (durability tier, docs/DURABILITY.md)
//
// Media always holds the latest acknowledged bytes; the cache is an undo
// log of pre-write contents for blocks not yet destaged. Bookkeeping is
// charged zero simulated time, so fault-free runs are bit-identical to a
// build without it.

void Ssd::note_block_write(Lba lba) {
  const std::uint64_t key = lba.value();
  if (!undo_.contains(key)) {
    undo_.emplace(key, media_.read(key * kLbaSize, kLbaSize));
    dirty_fifo_.push_back(lba);
  }
  // Capacity bound: blocks older than the cache window have been destaged.
  while (dirty_fifo_.size() * kLbaSize > profile_.write_cache_bytes.value()) {
    destage_oldest();
  }
}

void Ssd::destage_oldest() {
  if (dirty_fifo_.empty()) return;
  undo_.erase(dirty_fifo_.front().value());
  dirty_fifo_.pop_front();
}

void Ssd::flush_cache() {
  undo_.clear();
  dirty_fifo_.clear();
  ++flushes_completed_;
}

void Ssd::power_cycle() {
  // Undestaged blocks revert to their pre-write contents (fresh blocks to
  // phantom "unknown"): the acknowledged-but-volatile writes are gone.
  lost_cache_blocks_ += dirty_fifo_.size();
  for (const Lba lba : dirty_fifo_) {
    media_.write(lba.value() * kLbaSize, undo_.at(lba.value()));
  }
  undo_.clear();
  dirty_fifo_.clear();
  ++power_cycles_;
  ++crash_epoch_;  // in-flight commands' completions die with the power
}

sim::Task Ssd::page_read_to_buffer(Lba lba, pcie::Addr dst,
                                   sim::WaitGroup& wg, bool& uncorrectable) {
  bool bad = false;
  co_await nand_.read_page(lba, &bad);
  if (bad) {
    // ECC failed: nothing is transferred for this page (real controllers
    // abort the transfer and report an unrecovered read error).
    uncorrectable = true;
  } else {
    Payload page = media_.read(lba.value() * kLbaSize, kLbaSize);
    co_await fabric_.write(port_, dst, std::move(page));
  }
  wg.done();
}

sim::Task Ssd::page_fetch_from_buffer(Lba lba, pcie::Addr src,
                                      sim::WaitGroup& wg, bool& ok,
                                      std::uint64_t epoch) {
  auto rr = co_await fabric_.read(port_, src, Bytes{kLbaSize});
  if (!rr.ok) ok = false;
  if (epoch == crash_epoch_) {
    // A fetch that lands after a power cycle writes nothing: the payload
    // never reached the (now reinitialized) controller's cache.
    note_block_write(lba);
    media_.write(lba.value() * kLbaSize, rr.data);
  }
  wg.done();
}

sim::Task Ssd::execute_read(IoQueue& q, SubmissionEntry sqe,
                            std::uint64_t epoch) {
  std::vector<BusAddr> pages;
  co_await resolve_prps(sqe, pages);
  const std::uint64_t blocks = static_cast<std::uint64_t>(sqe.nlb) + 1;
  if (pages.size() < blocks) {
    ++read_errors_;
    co_await finish_io(q, sqe.cid, Status::kDataTransferError, epoch);
    co_return;
  }
  bool uncorrectable = false;
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(blocks));
  for (std::uint64_t i = 0; i < blocks; ++i) {
    sim_.spawn(page_read_to_buffer(sqe.slba + i, pages[i], wg, uncorrectable));
  }
  co_await wg.wait();
  if (uncorrectable) {
    ++read_errors_;
    co_await finish_io(q, sqe.cid, Status::kUnrecoveredReadError, epoch);
    co_return;
  }
  co_await finish_io(q, sqe.cid, Status::kSuccess, epoch);
}

sim::Task Ssd::execute_write(IoQueue& q, SubmissionEntry sqe,
                             std::uint64_t epoch) {
  std::vector<BusAddr> pages;
  co_await resolve_prps(sqe, pages);
  const std::uint64_t blocks = static_cast<std::uint64_t>(sqe.nlb) + 1;
  if (pages.size() < blocks) {
    ++read_errors_;
    co_await finish_io(q, sqe.cid, Status::kDataTransferError, epoch);
    co_return;
  }
  bool ok = true;
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(blocks));
  for (std::uint64_t i = 0; i < blocks; ++i) {
    sim_.spawn(
        page_fetch_from_buffer(sqe.slba + i, pages[i], wg, ok, epoch));
  }
  // The payload fetch streams into the program pipeline: the fetch-path
  // non-overlap (P2P pacing, DRAM turnaround) is charged inside
  // ingest_write per source, so the fetch itself runs concurrently.
  bool program_failed = false;
  co_await nand_.ingest_write(sqe.data_bytes(), classify_source(pages[0]),
                              &program_failed);
  co_await wg.wait();
  if (!ok) {
    co_await finish_io(q, sqe.cid, Status::kDataTransferError, epoch);
    co_return;
  }
  if (program_failed) {
    // Media contents for the command's LBA range are undefined after a
    // program failure (see docs/FAULTS.md); a retry rewrites them whole.
    ++write_errors_;
    co_await finish_io(q, sqe.cid, Status::kWriteFault, epoch);
    co_return;
  }
  if (epoch == crash_epoch_ && crash_faults_.armed() && crash_faults_.fire()) {
    // Injected power loss mid-destage: the command's blocks are all in the
    // volatile cache, and a seeded prefix of the cache's destage FIFO --
    // possibly cutting this or an earlier unflushed record at an arbitrary
    // block boundary (torn tail) -- reaches NAND before the power dies.
    // Everything younger is lost, and no CQE is ever posted.
    const std::uint64_t destaged =
        crash_rng_.below(static_cast<std::uint64_t>(dirty_fifo_.size()) + 1);
    for (std::uint64_t i = 0; i < destaged; ++i) destage_oldest();
    power_cycle();
    ++suppressed_cqes_;
    co_return;
  }
  co_await sim_.delay(profile_.write_ack_base);
  co_await finish_io(q, sqe.cid, Status::kSuccess, epoch);
}

sim::Task Ssd::finish_io(IoQueue& q, Cid cid, Status status,
                         std::uint64_t epoch) {
  if (epoch != crash_epoch_) {
    ++suppressed_cqes_;
    co_return;
  }
  co_await post_cqe(q, cid, status);
}

sim::Task Ssd::post_cqe(IoQueue& q, Cid cid, Status status,
                        std::uint32_t dw0) {
  // Respect CQ space: the consumer frees slots via the CQ head doorbell.
  while (static_cast<std::uint16_t>((q.cq_tail + 1) % q.cq_entries) ==
         q.cq_head_db) {
    q.cq_space->close();
    co_await q.cq_space->opened();
  }
  CompletionEntry cqe;
  cqe.dw0 = dw0;
  cqe.sq_head = q.sq_head;
  cqe.sq_id = q.sqid;
  cqe.cid = cid;
  cqe.status = status;
  cqe.phase = q.cq_phase;
  const pcie::Addr dst =
      q.cq_base + Bytes{static_cast<std::uint64_t>(q.cq_tail) * kCqeSize};
  q.cq_tail = static_cast<std::uint16_t>((q.cq_tail + 1) % q.cq_entries);
  if (q.cq_tail == 0) q.cq_phase = !q.cq_phase;

  auto raw = cqe.encode();
  std::vector<std::byte> bytes(raw.begin(), raw.end());
  co_await sim_.delay(profile_.cqe_post);
  co_await fabric_.write(port_, dst, Payload::bytes(std::move(bytes)));
  ++commands_completed_;
  if (status != Status::kSuccess) ++error_cqes_;
  sim_.trace(sim::TraceCat::kNvmeComplete, "cqe-posted", cid.value(),
             static_cast<std::uint64_t>(status));
}

// ---------------------------------------------------------------------------
// PRP resolution

sim::Task Ssd::resolve_prps(const SubmissionEntry& sqe,
                            std::vector<BusAddr>& pages) {
  // List pages are fetched whole and cached per command: controllers read
  // PRP lists in bursts, not entry-by-entry. The cache is lookup-only
  // (never iterated), so unordered iteration order cannot leak into
  // simulated behaviour.
  std::unordered_map<BusAddr, std::vector<std::uint64_t>> cache;
  auto reader = [this, &cache](BusAddr entry_addr)
      -> sim::Future<std::uint64_t> {
    const BusAddr page_addr = page_base(entry_addr);
    const std::uint64_t index = page_offset(entry_addr).value() / 8;
    auto it = cache.find(page_addr);
    if (it != cache.end()) {
      sim::Promise<std::uint64_t> p(sim_);
      p.set(it->second[index]);
      return p.future();
    }
    sim::Promise<std::uint64_t> p(sim_);
    auto fut = p.future();
    sim_.spawn([](Ssd* self, BusAddr pa, std::uint64_t idx,
                  std::unordered_map<BusAddr, std::vector<std::uint64_t>>*
                      cache_ptr,
                  sim::Promise<std::uint64_t> done) -> sim::Task {
      auto rr = co_await self->fabric_.read(self->port_, pa, Bytes{kPageSize},
                                            /*control=*/true);
      std::vector<std::uint64_t> entries(kPrpEntriesPerList, 0);
      if (rr.data.has_data()) {
        std::memcpy(entries.data(), rr.data.view().data(),
                    kPageSize);
      }
      auto [it2, _] = cache_ptr->emplace(pa, std::move(entries));
      done.set(it2->second[idx]);
    }(this, page_addr, index, &cache, std::move(p)));
    return fut;
  };

  PrpWalker walker(sim_, reader);
  co_await walker.walk(sqe.prp1, sqe.prp2, sqe.data_bytes(), pages);
}

FetchPath Ssd::classify_source(pcie::Addr addr) const {
  switch (fabric_.kind_at(addr)) {
    case pcie::MemKind::kFpgaUram:
      return FetchPath::kPeerUram;
    case pcie::MemKind::kFpgaHbm:
      // HBM removes the DRAM turnaround term; only the P2P pacing remains
      // (Sec. 7's prediction).
      return FetchPath::kPeerUram;
    case pcie::MemKind::kFpgaDram:
      return FetchPath::kPeerDram;
    case pcie::MemKind::kHostDram:
    case pcie::MemKind::kDevice:
      return FetchPath::kHostDram;
  }
  return FetchPath::kHostDram;
}

}  // namespace snacc::nvme
