// PRP (Physical Region Page) handling, Sec. 2.2 of the paper.
//
// Given a command's PRP1/PRP2 and transfer length, PrpWalker yields the
// physical address of every 4 kB page of the payload:
//   * <= 4 kB (one page):        PRP1 only.
//   * <= 8 kB (two pages):       PRP1 + PRP2 as a direct second entry.
//   * larger:                    PRP2 points to a PRP *list* page holding
//                                8-byte entries; if the transfer needs more
//                                entries than one list page holds, the last
//                                entry chains to the next list page.
// List pages are fetched through a caller-supplied reader -- in the live
// system that is a PCIe read, which is exactly how the SNAcc streamer's
// on-the-fly PRP computation gets exercised (the controller "reads" a list
// that the FPGA synthesizes from the address, Sec. 4.4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/payload.hpp"
#include "common/units.hpp"
#include "sim/future.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::nvme {

inline constexpr std::uint32_t kPrpEntriesPerList =
    static_cast<std::uint32_t>(kPageSize / 8);  // 512

/// Number of PRP pages needed for a transfer of `len` bytes starting at a
/// page-aligned address. (SNAcc always issues page-aligned buffers,
/// Sec. 4.3: "each new read and write command starts at a 4 kB boundary".)
constexpr std::uint64_t prp_page_count(Bytes len) {
  return (len.value() + kPageSize - 1) / kPageSize;
}

/// Builds the in-memory PRP list pages for a contiguous buffer -- the
/// "naive implementation" the paper contrasts with on-the-fly computation.
/// Returns the list pages' contents; used by the SPDK baseline and by tests
/// as the reference layout.
std::vector<std::vector<std::uint64_t>> build_prp_lists(BusAddr buffer_base,
                                                        Bytes len,
                                                        BusAddr list_page_base);

/// Asynchronous reader for one 8-byte PRP entry at a physical address. The
/// wire value is a raw little-endian word; the walker re-types it.
using PrpEntryReader =
    std::function<sim::Future<std::uint64_t>(BusAddr entry_addr)>;

/// Walks the PRP structure of one command and produces the page addresses in
/// transfer order. List entries are fetched via `reader` (PCIe in the real
/// system). The walk fetches list pages lazily and in order.
class PrpWalker {
 public:
  PrpWalker(sim::Simulator& sim, PrpEntryReader reader)
      : sim_(&sim), reader_(std::move(reader)) {}

  /// Resolves all page addresses for a transfer. co_awaits entry fetches.
  /// On malformed PRPs (unaligned mid-list entries) the result is truncated.
  sim::Task walk(BusAddr prp1, BusAddr prp2, Bytes len,
                 std::vector<BusAddr>& out);

 private:
  sim::Simulator* sim_;
  PrpEntryReader reader_;
};

}  // namespace snacc::nvme
