#include "nvme/nand.hpp"

#include <algorithm>

namespace snacc::nvme {

NandBackend::NandBackend(sim::Simulator& sim, const SsdProfile& ssd,
                         const PcieProfile& pcie, std::uint64_t seed)
    : sim_(sim),
      ssd_(ssd),
      pcie_(pcie),
      rng_(seed),
      dies_(ssd.dies),
      write_pipe_(sim, ssd.write_rate_fast_gb_s, ssd.write_cmd_overhead) {}

sim::Task NandBackend::read_page(Lba lba, bool* uncorrectable) {
  Die& die = dies_[lba.value() % dies_.size()];
  // A page following the previous access on this die streams from the same
  // block via multi-plane reads; a random page pays the full random II.
  const bool sequential =
      die.last_lba != Lba{~0ull} && lba == die.last_lba + dies_.size();
  die.last_lba = lba;
  const TimePs ii = sequential ? ssd_.nand_read_ii_seq : ssd_.nand_read_ii_random;
  const TimePs start = std::max(sim_.now(), die.next_free);
  die.next_free = start + ii;
  const TimePs jitter = ssd_.nand_read_jitter.is_zero()
                            ? TimePs{}
                            : TimePs{rng_.below(ssd_.nand_read_jitter.value())};
  // Sequential streams hit the controller's read-ahead: only the stream's
  // first pages pay the full tR; the rest are staged ahead of the request.
  const TimePs access_latency =
      sequential ? ssd_.readahead_hit_latency + jitter / 8
                 : ssd_.nand_read_base + jitter;
  const TimePs ready = start + access_latency;
  ++pages_read_;
  // The die timing is charged either way: an uncorrectable page costs the
  // full access (the controller reads it, then ECC decode fails).
  if (read_faults_.armed() && read_faults_.fire() && uncorrectable != nullptr) {
    *uncorrectable = true;
  }
  co_await sim_.delay_until(ready);
}

double NandBackend::fetch_overhead_rate(FetchPath path) const {
  switch (path) {
    case FetchPath::kHostDram:
      return pcie_.host_fetch_overhead_gb_s;
    case FetchPath::kPeerUram:
      return pcie_.p2p_fetch_overhead_gb_s;
    case FetchPath::kPeerDram:
      return pcie_.onboard_dram_fetch_overhead_gb_s;
  }
  return 0.0;
}

void NandBackend::maybe_toggle_mode() {
  if (forced_mode_) return;
  if (sim_.now() > last_write_end_ + kModeIdleGap) {
    fast_mode_ = !fast_mode_;
    write_pipe_.set_rate(current_write_rate());
  }
}

sim::Task NandBackend::ingest_write(Bytes bytes, FetchPath path,
                                    bool* program_failed) {
  maybe_toggle_mode();
  write_pipe_.set_rate(current_write_rate());
  // Non-overlapped fetch time: 0 for host-resident buffers (fully pipelined
  // through the root complex), finite for P2P sources (Sec. 5.2).
  const double overhead_rate = fetch_overhead_rate(path);
  const TimePs extra =
      overhead_rate > 0.0 ? transfer_time(bytes, overhead_rate) : TimePs{};
  co_await write_pipe_.acquire(bytes.value(), extra);
  bytes_ingested_ += bytes.value();
  last_write_end_ = std::max(last_write_end_, sim_.now());
  // One program-fault event per ingested command; the pipeline time is
  // charged either way (the failure surfaces at program-status check).
  if (program_faults_.armed() && program_faults_.fire() &&
      program_failed != nullptr) {
    *program_failed = true;
  }
}

}  // namespace snacc::nvme
