// Fault-injection layer: seeded, deterministic, per-component fault plans.
//
// Every injectable component (NAND backend, SSD controller, PCIe fabric,
// IOMMU) owns one or more `Injector`s. A disabled injector (the default) is
// a single branch: it draws no random numbers, keeps no event count and
// charges no simulated time, so the fault machinery is exactly zero-cost
// when off -- bench and figure numbers stay bit-identical to a build that
// never heard of faults.
//
// An armed injector decides per *event* (one page read, one command, one
// IOMMU check, ...) whether to fire, from two composable sources:
//   - `schedule`: explicit 0-based event indices that always fire --
//     deterministic single-shot faults for tests ("fail the 3rd page read");
//   - `probability`: an independent per-event Bernoulli draw from the plan's
//     own seeded Xoshiro256 stream -- reproducible fault *rates* for benches.
// The decision never consults global state, so the same plan + seed yields
// the same fault schedule run-to-run regardless of what else the simulation
// does (see docs/FAULTS.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace snacc::fault {

struct FaultPlan {
  bool enabled = false;
  /// Per-event fire probability (0 disables the probabilistic source).
  double probability = 0.0;
  /// Sorted 0-based event indices that always fire.
  std::vector<std::uint64_t> schedule;
  /// Seed for the probabilistic source; independent of every model RNG.
  std::uint64_t seed = 0xFA017;

  /// Plan firing exactly at the given event indices.
  static FaultPlan at(std::vector<std::uint64_t> indices);
  /// Plan firing each event independently with probability `p`.
  static FaultPlan rate(double p, std::uint64_t seed = 0xFA017);
};

class Injector {
 public:
  Injector() = default;
  explicit Injector(FaultPlan plan);

  /// Disabled injectors are a single branch on this flag.
  bool armed() const { return plan_.enabled; }

  /// Advances the event count and decides whether this event faults.
  /// Returns false (with zero side effects) when disarmed.
  bool fire();

  std::uint64_t events() const { return events_; }
  std::uint64_t fired() const { return fired_; }

 private:
  FaultPlan plan_;
  Xoshiro256 rng_{0};
  std::uint64_t events_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t next_scheduled_ = 0;
};

}  // namespace snacc::fault
