#include "fault/fault.hpp"

namespace snacc::fault {

FaultPlan FaultPlan::at(std::vector<std::uint64_t> indices) {
  FaultPlan p;
  p.enabled = true;
  p.schedule = std::move(indices);
  std::sort(p.schedule.begin(), p.schedule.end());
  return p;
}

FaultPlan FaultPlan::rate(double probability, std::uint64_t seed) {
  FaultPlan p;
  p.enabled = true;
  p.probability = probability;
  p.seed = seed;
  return p;
}

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {
  // Callers hand-build plans, so the sorted-schedule invariant is enforced
  // here, not assumed. Duplicates must also go: fire() advances
  // next_scheduled_ only on an exact index match, so a repeated entry would
  // permanently block every later one ({3, 3, 5} would never fire 5).
  std::sort(plan_.schedule.begin(), plan_.schedule.end());
  plan_.schedule.erase(
      std::unique(plan_.schedule.begin(), plan_.schedule.end()),
      plan_.schedule.end());
}

bool Injector::fire() {
  if (!plan_.enabled) return false;
  const std::uint64_t idx = events_++;
  bool hit = false;
  if (next_scheduled_ < plan_.schedule.size() &&
      plan_.schedule[next_scheduled_] == idx) {
    ++next_scheduled_;
    hit = true;
  }
  // The probabilistic draw happens even on a scheduled hit so mixing the two
  // sources does not shift the probabilistic stream.
  if (plan_.probability > 0.0 && rng_.chance(plan_.probability)) hit = true;
  if (hit) ++fired_;
  return hit;
}

}  // namespace snacc::fault
