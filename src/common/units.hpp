// Strong domain types shared across the SNAcc simulation framework.
//
// Every domain quantity the simulator juggles -- picosecond timestamps,
// global PCIe bus addresses, byte counts / window-local offsets, logical
// block addresses, NVMe command identifiers, reorder-buffer slot indices --
// gets its own zero-cost wrapper type. Construction from a raw integer is
// explicit and only meaningful arithmetic compiles:
//
//   TimePs  + TimePs  -> TimePs      TimePs  * n      -> TimePs
//   Bytes   + Bytes   -> Bytes       BusAddr + Bytes  -> BusAddr
//   BusAddr - BusAddr -> Bytes       Lba     + count  -> Lba
//   BusAddr + BusAddr -> (error)     TimePs  + Bytes  -> (error)
//
// All simulated time is kept in integer picoseconds (`TimePs`) to avoid
// floating-point drift in event ordering; helpers convert to/from the
// human-facing units (ns/us/ms) used throughout the paper.
//
// Domain conventions (enforced by tools/snacc-lint on the public headers):
//  * `BusAddr` -- an address in the *global* PCIe memory map (host DRAM
//    windows, device BARs). Produced by the address map / translators only.
//  * `Bytes`   -- a byte count, and also a *window-local* offset (BAR-local
//    register offsets, buffer-ring offsets, device byte offsets). Subtracting
//    two `BusAddr` yields the `Bytes` offset into the window.
//  * `Lba`     -- a logical block address on an NVMe namespace.
//  * `Cid`     -- an NVMe command identifier (wire-level, 16 bit).
//  * `SlotIdx` -- a reorder-buffer / PRP-regfile slot index. Converting
//    between `Cid` and `SlotIdx` is an explicit, documented step.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace snacc {

/// Simulated time in picoseconds. Zero-initialized by default.
class TimePs {
 public:
  constexpr TimePs() = default;
  constexpr explicit TimePs(std::uint64_t v) : v_(v) {}

  constexpr std::uint64_t value() const { return v_; }
  constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr auto operator<=>(TimePs, TimePs) = default;

  constexpr TimePs& operator+=(TimePs o) { v_ += o.v_; return *this; }
  constexpr TimePs& operator-=(TimePs o) { v_ -= o.v_; return *this; }
  friend constexpr TimePs operator+(TimePs a, TimePs b) { return TimePs{a.v_ + b.v_}; }
  friend constexpr TimePs operator-(TimePs a, TimePs b) { return TimePs{a.v_ - b.v_}; }
  friend constexpr TimePs operator*(TimePs a, std::uint64_t n) { return TimePs{a.v_ * n}; }
  friend constexpr TimePs operator*(std::uint64_t n, TimePs a) { return TimePs{a.v_ * n}; }
  friend constexpr TimePs operator/(TimePs a, std::uint64_t n) { return TimePs{a.v_ / n}; }
  /// Ratio of two durations (how many `b` fit in `a`).
  friend constexpr std::uint64_t operator/(TimePs a, TimePs b) { return a.v_ / b.v_; }
  friend constexpr TimePs operator%(TimePs a, TimePs b) { return TimePs{a.v_ % b.v_}; }

 private:
  std::uint64_t v_ = 0;
};

/// A byte count; also used for window-local byte offsets (see file header).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : v_(v) {}

  constexpr std::uint64_t value() const { return v_; }
  constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  constexpr Bytes& operator+=(Bytes o) { v_ += o.v_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { v_ -= o.v_; return *this; }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.v_ + b.v_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.v_ - b.v_}; }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t n) { return Bytes{a.v_ * n}; }
  friend constexpr Bytes operator*(std::uint64_t n, Bytes a) { return Bytes{a.v_ * n}; }
  friend constexpr Bytes operator/(Bytes a, std::uint64_t n) { return Bytes{a.v_ / n}; }
  /// How many `b`-sized pieces fit in `a` (floor).
  friend constexpr std::uint64_t operator/(Bytes a, Bytes b) { return a.v_ / b.v_; }
  friend constexpr Bytes operator%(Bytes a, Bytes b) { return Bytes{a.v_ % b.v_}; }

 private:
  std::uint64_t v_ = 0;
};

/// An address in the global PCIe memory map.
class BusAddr {
 public:
  constexpr BusAddr() = default;
  constexpr explicit BusAddr(std::uint64_t v) : v_(v) {}

  constexpr std::uint64_t value() const { return v_; }

  friend constexpr auto operator<=>(BusAddr, BusAddr) = default;

  constexpr BusAddr& operator+=(Bytes o) { v_ += o.value(); return *this; }
  constexpr BusAddr& operator-=(Bytes o) { v_ -= o.value(); return *this; }
  friend constexpr BusAddr operator+(BusAddr a, Bytes b) { return BusAddr{a.v_ + b.value()}; }
  friend constexpr BusAddr operator-(BusAddr a, Bytes b) { return BusAddr{a.v_ - b.value()}; }
  /// Offset between two addresses in the same window (a must be >= b).
  friend constexpr Bytes operator-(BusAddr a, BusAddr b) { return Bytes{a.v_ - b.v_}; }

 private:
  std::uint64_t v_ = 0;
};

/// Logical block address on an NVMe namespace.
class Lba {
 public:
  constexpr Lba() = default;
  constexpr explicit Lba(std::uint64_t v) : v_(v) {}

  constexpr std::uint64_t value() const { return v_; }

  friend constexpr auto operator<=>(Lba, Lba) = default;

  constexpr Lba& operator++() { ++v_; return *this; }
  friend constexpr Lba operator+(Lba a, std::uint64_t blocks) { return Lba{a.v_ + blocks}; }
  /// Block count between two LBAs (a must be >= b).
  friend constexpr std::uint64_t operator-(Lba a, Lba b) { return a.v_ - b.v_; }

 private:
  std::uint64_t v_ = 0;
};

/// NVMe command identifier (CDW0 bits 31:16 on the wire).
class Cid {
 public:
  constexpr Cid() = default;
  constexpr explicit Cid(std::uint16_t v) : v_(v) {}

  constexpr std::uint16_t value() const { return v_; }

  friend constexpr auto operator<=>(Cid, Cid) = default;

 private:
  std::uint16_t v_ = 0;
};

/// Reorder-buffer / PRP-regfile slot index. In the SNAcc streamer a slot
/// index doubles as the NVMe CID of the command occupying it; the
/// conversion is explicit via `cid_of` / `slot_of` below.
class SlotIdx {
 public:
  constexpr SlotIdx() = default;
  constexpr explicit SlotIdx(std::uint16_t v) : v_(v) {}

  constexpr std::uint16_t value() const { return v_; }

  friend constexpr auto operator<=>(SlotIdx, SlotIdx) = default;

 private:
  std::uint16_t v_ = 0;
};

/// Slot index <-> CID, the streamer's "slot doubles as CID" identity
/// (Sec. 4.2). Explicit so accidental CID/slot mixing stays a type error.
constexpr Cid cid_of(SlotIdx s) { return Cid{s.value()}; }
constexpr SlotIdx slot_of(Cid c) { return SlotIdx{c.value()}; }

inline constexpr std::uint64_t kPsPerNs = 1'000;
inline constexpr std::uint64_t kPsPerUs = 1'000'000;
inline constexpr std::uint64_t kPsPerMs = 1'000'000'000;
inline constexpr std::uint64_t kPsPerS = 1'000'000'000'000ULL;

/// Saturating literal helpers: `seconds(20'000'000)` would silently wrap
/// std::uint64_t (2^64 ps is only ~213 days); a saturated "forever" is the
/// useful semantics for timeouts and run_until() deadlines.
constexpr TimePs saturating_scale(std::uint64_t v, std::uint64_t unit_ps) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  if (v > kMax / unit_ps) return TimePs{kMax};
  return TimePs{v * unit_ps};
}

constexpr TimePs ps(std::uint64_t v) { return TimePs{v}; }
constexpr TimePs ns(std::uint64_t v) { return saturating_scale(v, kPsPerNs); }
constexpr TimePs us(std::uint64_t v) { return saturating_scale(v, kPsPerUs); }
constexpr TimePs ms(std::uint64_t v) { return saturating_scale(v, kPsPerMs); }
constexpr TimePs seconds(std::uint64_t v) {
  return saturating_scale(v, kPsPerS);
}

constexpr double to_ns(TimePs t) { return static_cast<double>(t.value()) / static_cast<double>(kPsPerNs); }
constexpr double to_us(TimePs t) { return static_cast<double>(t.value()) / static_cast<double>(kPsPerUs); }
constexpr double to_ms(TimePs t) { return static_cast<double>(t.value()) / static_cast<double>(kPsPerMs); }
constexpr double to_s(TimePs t) { return static_cast<double>(t.value()) / static_cast<double>(kPsPerS); }

/// Sizes. Powers of two, as used for buffers/pages; storage vendors' GB
/// (1e9) is used only when reporting bandwidth. Kept as raw integers so
/// size expressions like `4 * MiB` stay natural; wrap the result in
/// `Bytes{...}` at a typed boundary.
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/// NVMe memory page size used throughout (PRP granularity).
inline constexpr std::uint64_t kPageSize = 4 * KiB;

/// Page-granular helpers for the two address-ish domains.
constexpr Bytes page_align_up(Bytes b) {
  return Bytes{(b.value() + kPageSize - 1) & ~(kPageSize - 1)};
}
constexpr Bytes page_align_down(Bytes b) {
  return Bytes{b.value() & ~(kPageSize - 1)};
}
constexpr Bytes page_offset(BusAddr a) { return Bytes{a.value() & (kPageSize - 1)}; }
constexpr BusAddr page_base(BusAddr a) {
  return BusAddr{a.value() & ~(kPageSize - 1)};
}

/// Block-granular helpers for device-byte <-> LBA conversions, so callers
/// (the splitter, the streamer's command builders) never have to drop to
/// raw integers to divide an offset by the block size.
constexpr bool aligned(Bytes b, std::uint64_t block) {
  return b.value() % block == 0;
}
/// LBA containing device-byte offset `off` with `block`-byte blocks.
constexpr Lba lba_of(Bytes off, std::uint64_t block) {
  return Lba{off.value() / block};
}
/// Whole blocks covered by `len` (floor).
constexpr std::uint64_t blocks_of(Bytes len, std::uint64_t block) {
  return len.value() / block;
}
/// Byte offset of `off` within its containing block.
constexpr std::uint64_t block_offset(Bytes off, std::uint64_t block) {
  return off.value() % block;
}

/// Converts a (bytes, duration) pair into GB/s (decimal GB as in the paper).
constexpr double gb_per_s(std::uint64_t bytes, TimePs elapsed) {
  if (elapsed.is_zero()) return 0.0;
  return static_cast<double>(bytes) / 1e9 / to_s(elapsed);
}
constexpr double gb_per_s(Bytes bytes, TimePs elapsed) {
  return gb_per_s(bytes.value(), elapsed);
}

/// Time to move `bytes` at `gbps` decimal-GB/s, rounded up to whole ps.
constexpr TimePs transfer_time(std::uint64_t bytes, double gb_s) {
  if (gb_s <= 0.0) return TimePs{};
  const double s = static_cast<double>(bytes) / (gb_s * 1e9);
  return TimePs{static_cast<std::uint64_t>(s * static_cast<double>(kPsPerS) + 0.5)};
}
constexpr TimePs transfer_time(Bytes bytes, double gb_s) {
  return transfer_time(bytes.value(), gb_s);
}

}  // namespace snacc

// Hash support so strong types drop into unordered containers.
template <>
struct std::hash<snacc::TimePs> {
  std::size_t operator()(snacc::TimePs t) const noexcept {
    return std::hash<std::uint64_t>{}(t.value());
  }
};
template <>
struct std::hash<snacc::Bytes> {
  std::size_t operator()(snacc::Bytes b) const noexcept {
    return std::hash<std::uint64_t>{}(b.value());
  }
};
template <>
struct std::hash<snacc::BusAddr> {
  std::size_t operator()(snacc::BusAddr a) const noexcept {
    return std::hash<std::uint64_t>{}(a.value());
  }
};
template <>
struct std::hash<snacc::Lba> {
  std::size_t operator()(snacc::Lba l) const noexcept {
    return std::hash<std::uint64_t>{}(l.value());
  }
};
template <>
struct std::hash<snacc::Cid> {
  std::size_t operator()(snacc::Cid c) const noexcept {
    return std::hash<std::uint16_t>{}(c.value());
  }
};
template <>
struct std::hash<snacc::SlotIdx> {
  std::size_t operator()(snacc::SlotIdx s) const noexcept {
    return std::hash<std::uint16_t>{}(s.value());
  }
};
