// Basic unit types and literals shared across the SNAcc simulation framework.
//
// All simulated time is kept in integer picoseconds (`TimePs`) to avoid
// floating-point drift in event ordering; helpers convert to/from the
// human-facing units (ns/us/ms) used throughout the paper.
#pragma once

#include <cstdint>

namespace snacc {

/// Simulated time in picoseconds.
using TimePs = std::uint64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;
inline constexpr TimePs kPsPerMs = 1'000'000'000;
inline constexpr TimePs kPsPerS = 1'000'000'000'000ULL;

constexpr TimePs ps(std::uint64_t v) { return v; }
constexpr TimePs ns(std::uint64_t v) { return v * kPsPerNs; }
constexpr TimePs us(std::uint64_t v) { return v * kPsPerUs; }
constexpr TimePs ms(std::uint64_t v) { return v * kPsPerMs; }
constexpr TimePs seconds(std::uint64_t v) { return v * kPsPerS; }

constexpr double to_ns(TimePs t) { return static_cast<double>(t) / kPsPerNs; }
constexpr double to_us(TimePs t) { return static_cast<double>(t) / kPsPerUs; }
constexpr double to_ms(TimePs t) { return static_cast<double>(t) / kPsPerMs; }
constexpr double to_s(TimePs t) { return static_cast<double>(t) / kPsPerS; }

/// Sizes. Powers of two, as used for buffers/pages; storage vendors' GB
/// (1e9) is used only when reporting bandwidth.
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/// NVMe memory page size used throughout (PRP granularity).
inline constexpr std::uint64_t kPageSize = 4 * KiB;

/// Converts a (bytes, duration) pair into GB/s (decimal GB as in the paper).
constexpr double gb_per_s(std::uint64_t bytes, TimePs elapsed) {
  if (elapsed == 0) return 0.0;
  return static_cast<double>(bytes) / 1e9 / to_s(elapsed);
}

/// Time to move `bytes` at `gbps` decimal-GB/s, rounded up to whole ps.
constexpr TimePs transfer_time(std::uint64_t bytes, double gb_s) {
  if (gb_s <= 0.0) return 0;
  const double s = static_cast<double>(bytes) / (gb_s * 1e9);
  return static_cast<TimePs>(s * static_cast<double>(kPsPerS) + 0.5);
}

}  // namespace snacc
