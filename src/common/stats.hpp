// Lightweight statistics helpers used by benches and device models:
// counters, min/max/mean accumulators, and a fixed-bucket latency histogram.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace snacc {

/// Streaming accumulator: count / sum / min / max / mean / stddev (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Latency histogram with exact-sample percentiles (stores samples; fine for
/// the ≤ few-million-sample runs in this framework).
class LatencyStats {
 public:
  void add(TimePs t) {
    samples_.push_back(t);
    sorted_ = false;
  }

  std::uint64_t count() const { return samples_.size(); }

  TimePs percentile(double p) {
    if (samples_.empty()) return TimePs{};
    sort_if_needed();
    const double idx = p / 100.0 * static_cast<double>(samples_.size() - 1);
    return samples_[static_cast<std::size_t>(idx + 0.5)];
  }

  double mean_us() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (TimePs t : samples_) s += to_us(t);
    return s / static_cast<double>(samples_.size());
  }

  TimePs min() {
    sort_if_needed();
    return samples_.empty() ? TimePs{} : samples_.front();
  }
  TimePs max() {
    sort_if_needed();
    return samples_.empty() ? TimePs{} : samples_.back();
  }

 private:
  void sort_if_needed() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  std::vector<TimePs> samples_;
  bool sorted_ = true;
};

/// Named monotonic byte/op counter, used for PCIe traffic accounting.
struct Counter {
  std::string name;
  std::uint64_t value = 0;
  void add(std::uint64_t v) { value += v; }
};

/// Cross-layer fault/recovery accounting snapshot (docs/FAULTS.md). Each
/// field mirrors one component counter; host::SnaccDevice::fault_stats() and
/// the fault benches assemble and print it. `injected()` vs. the recovery
/// counters is the books-balance check: every injected fault must end up
/// either recovered or quarantined (never silently lost).
struct FaultStats {
  // Injection sites (how many faults each injector fired).
  std::uint64_t nand_read_faults = 0;
  std::uint64_t nand_program_faults = 0;
  std::uint64_t ssd_internal_faults = 0;
  std::uint64_t iommu_injected_faults = 0;
  std::uint64_t fabric_injected_timeouts = 0;
  // Device-side effects.
  std::uint64_t ssd_error_cqes = 0;
  // Streamer recovery path.
  std::uint64_t streamer_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t watchdog_timeouts = 0;
  std::uint64_t stale_completions = 0;

  std::uint64_t injected() const {
    return nand_read_faults + nand_program_faults + ssd_internal_faults +
           iommu_injected_faults + fabric_injected_timeouts;
  }
};

}  // namespace snacc
