// Lightweight statistics helpers used by benches and device models:
// counters, min/max/mean accumulators, and a fixed-bucket latency histogram.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace snacc {

/// Streaming accumulator: count / sum / min / max / mean / stddev (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Latency histogram. The default mode is a log-bucketed (HDR-style)
/// histogram: 64 sub-buckets per power of two gives ≤ ~1.6% relative
/// quantization error at a fixed ~30 KiB footprint, so memory stays bounded
/// no matter how long the run is. Percentiles are linearly interpolated
/// within the containing bucket and clamped to the observed [min, max].
///
/// `Mode::kExact` keeps every sample and reproduces exact order statistics
/// (nearest-rank percentiles over the sorted samples) -- opt in for the
/// paper-figure benches, where run lengths are bounded and numbers feed
/// published tables. In both modes the mean is accumulated at add() time in
/// insertion order, so switching modes never changes mean_us().
class LatencyStats {
 public:
  enum class Mode { kBucketed, kExact };

  LatencyStats() = default;
  explicit LatencyStats(Mode mode) : mode_(mode) {}

  void add(TimePs t) {
    ++count_;
    sum_us_ += to_us(t);
    const std::uint64_t v = t.value();
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
    if (mode_ == Mode::kExact) {
      samples_.push_back(t);
      sorted_ = false;
    } else {
      ++buckets_[bucket_index(v)];
    }
  }

  std::uint64_t count() const { return count_; }

  TimePs percentile(double p) {
    if (count_ == 0) return TimePs{};
    // Nearest-rank index, matching the exact-mode formula so both modes
    // agree on *which* sample a percentile names; bucketed mode then
    // interpolates that rank inside its bucket.
    const double idx = p / 100.0 * static_cast<double>(count_ - 1);
    const std::uint64_t rank = static_cast<std::uint64_t>(idx + 0.5);
    if (mode_ == Mode::kExact) {
      sort_if_needed();
      return samples_[static_cast<std::size_t>(rank)];
    }
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = buckets_[b];
      if (n == 0) continue;
      if (seen + n > rank) {
        const double frac =
            (static_cast<double>(rank - seen) + 0.5) / static_cast<double>(n);
        const double est = static_cast<double>(bucket_low(b)) +
                           frac * static_cast<double>(bucket_width(b));
        const std::uint64_t clamped = std::clamp(
            static_cast<std::uint64_t>(est), min_, max_);
        return TimePs{clamped};
      }
      seen += n;
    }
    return TimePs{max_};
  }

  double mean_us() const {
    return count_ ? sum_us_ / static_cast<double>(count_) : 0.0;
  }

  TimePs min() const { return count_ ? TimePs{min_} : TimePs{}; }
  TimePs max() const { return count_ ? TimePs{max_} : TimePs{}; }

 private:
  // Bucket layout: values below 64 ps map 1:1 (indices 0..63); above that,
  // each power of two splits into 64 equal sub-buckets keyed by the six
  // bits after the leading one. 64-bit values need 58 octaves -> 3776
  // fixed counters.
  static constexpr std::uint64_t kMinorBits = 6;
  static constexpr std::size_t kBuckets = 64 + 58 * 64;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v < 64) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - static_cast<int>(kMinorBits);
    const std::uint64_t minor = (v >> shift) & 63;
    const std::uint64_t major = static_cast<std::uint64_t>(msb) - kMinorBits + 1;
    return static_cast<std::size_t>(major * 64 + minor);
  }
  static std::uint64_t bucket_low(std::size_t b) {
    if (b < 64) return b;
    const std::uint64_t major = b / 64;
    const std::uint64_t minor = b % 64;
    const int shift = static_cast<int>(major - 1);
    return (64 + minor) << shift;
  }
  static std::uint64_t bucket_width(std::size_t b) {
    return b < 64 ? 1 : std::uint64_t{1} << (b / 64 - 1);
  }

  void sort_if_needed() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  Mode mode_ = Mode::kBucketed;
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets);
  std::vector<TimePs> samples_;  // exact mode only
  bool sorted_ = true;
};

/// Named monotonic byte/op counter, used for PCIe traffic accounting.
struct Counter {
  std::string name;
  std::uint64_t value = 0;
  void add(std::uint64_t v) { value += v; }
};

/// Cross-layer fault/recovery accounting snapshot (docs/FAULTS.md). Each
/// field mirrors one component counter; host::SnaccDevice::fault_stats() and
/// the fault benches assemble and print it. `injected()` vs. the recovery
/// counters is the books-balance check: every injected fault must end up
/// either recovered or quarantined (never silently lost).
struct FaultStats {
  // Injection sites (how many faults each injector fired).
  std::uint64_t nand_read_faults = 0;
  std::uint64_t nand_program_faults = 0;
  std::uint64_t ssd_internal_faults = 0;
  std::uint64_t ssd_crash_faults = 0;
  std::uint64_t iommu_injected_faults = 0;
  std::uint64_t fabric_injected_timeouts = 0;
  // Device-side effects.
  std::uint64_t ssd_error_cqes = 0;
  // Durability tier (docs/DURABILITY.md): power loss and its fallout.
  std::uint64_t ssd_power_cycles = 0;
  std::uint64_t ssd_lost_cache_blocks = 0;
  std::uint64_t ssd_suppressed_cqes = 0;
  // Streamer recovery path.
  std::uint64_t streamer_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t watchdog_timeouts = 0;
  std::uint64_t stale_completions = 0;

  std::uint64_t injected() const {
    return nand_read_faults + nand_program_faults + ssd_internal_faults +
           ssd_crash_faults + iommu_injected_faults + fabric_injected_timeouts;
  }
};

}  // namespace snacc
