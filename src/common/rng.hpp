// Deterministic, fast PRNG for workload generation and timing jitter.
//
// SplitMix64 for seeding, xoshiro256** for the stream. Simulations must be
// reproducible run-to-run, so std::random_device is never used; every
// component takes an explicit seed.
#pragma once

#include <cstdint>

namespace snacc {

constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Rejection-free Lemire reduction (slight bias is
  /// irrelevant for workload generation but we keep it cheap and branchless).
  constexpr std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace snacc
