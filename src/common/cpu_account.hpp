// CpuAccount: tracks busy time of a modeled host CPU thread.
//
// The paper's Sec. 6.3 point -- SPDK and the GPU reference burn one CPU
// thread at 100 % moving data, SNAcc none -- is reproduced by charging every
// software action (submission bookkeeping, poll iterations, memcpy) here and
// reporting utilization over the measurement window.
#pragma once

#include <string>

#include "common/units.hpp"

namespace snacc {

class CpuAccount {
 public:
  explicit CpuAccount(std::string name = "cpu") : name_(std::move(name)) {}

  void charge(TimePs t) { busy_ += t; }
  void reset() { busy_ = TimePs{}; }

  TimePs busy() const { return busy_; }
  double utilization(TimePs window) const {
    if (window.is_zero()) return 0.0;
    const double u = static_cast<double>(busy_.value()) /
                     static_cast<double>(window.value());
    return u > 1.0 ? 1.0 : u;
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  TimePs busy_;
};

}  // namespace snacc
