// CalibrationProfile: every timing constant of the simulated testbed in one
// place, with its provenance.
//
// The paper's testbed is an AMD EPYC 7302P host, a Samsung 990 PRO 2 TB NVMe
// SSD (PCIe Gen4 x4) and an AMD Alveo U280 (PCIe Gen3 x16, 300 MHz memory
// clock domain). None of that hardware is available here, so each constant is
// either (a) taken from public device specifications, (b) derived from a
// measurement reported in the paper itself, or (c) a documented calibration
// used to match a paper measurement whose physical root cause the paper does
// not fully identify. Category (c) constants are marked CALIBRATED below.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace snacc {

struct SsdProfile {
  // --- Link ---------------------------------------------------------------
  /// PCIe Gen4 x4 wire rate available to TLPs (~93% of 8 GB/s raw after
  /// DLLP/framing; the 990 PRO is rated 7.45 GB/s). The fabric additionally
  /// charges TLP headers per max-payload packet and the command path adds
  /// small per-command gaps, so the end-to-end *payload* ceiling lands at
  /// the 6.9 GB/s sequential-read plateau all configurations in Fig. 4a
  /// share.
  double link_gb_s = 7.25;
  /// One-way request latency through switch + SSD PHY.
  TimePs link_latency = ns(350);

  // --- Controller ---------------------------------------------------------
  /// SQE fetch + decode per command inside the controller.
  TimePs cmd_process = ns(700);
  /// Completion-queue-entry post cost (16 B write + bookkeeping).
  TimePs cqe_post = ns(300);
  /// Maximum data transfer size the device accepts per command (MDTS).
  Bytes max_transfer{1 * MiB};
  std::uint32_t max_queue_entries = 1024;

  // --- NAND read path -----------------------------------------------------
  std::uint32_t dies = 32;
  /// tR for a 4 kB random read (base) plus uniform jitter [0, jitter).
  /// Base chosen so the FPGA-direct single-read latency lands at the paper's
  /// 34 us (Fig. 4c) after command/transfer overheads.
  TimePs nand_read_base = us(24);
  TimePs nand_read_jitter = us(7);
  /// Per-die initiation interval for *random* 4 kB page reads (cache-read
  /// pipelining). Sets the die-level queueing that, at QD 64, yields SPDK's
  /// 4.5 GB/s random-read bandwidth (Fig. 4b). CALIBRATED.
  TimePs nand_read_ii_random = us(21);
  /// Initiation interval for sequential pages on the same die (multi-plane
  /// streaming); makes large reads link-limited rather than NAND-limited.
  TimePs nand_read_ii_seq = us(3);
  /// Latency of a sequential page served from the controller's read-ahead
  /// stage (the firmware prefetches detected streams).
  TimePs readahead_hit_latency = us(3);

  // --- NAND write path ----------------------------------------------------
  /// The 990 PRO's measured write bandwidth alternates between exactly two
  /// values with no intermediates (Fig. 4a, stacked bars): 6.24 and
  /// 5.90 GB/s via SPDK. Modeled as two program modes (pSLC-cache fast mode
  /// vs. sustained mode) chosen per transfer.
  double write_rate_fast_gb_s = 6.24;
  double write_rate_slow_gb_s = 5.90;
  /// Per-command overhead serialized in the write pipeline (stripe setup,
  /// cache-slot allocation). Negligible for 1 MB sequential commands;
  /// combined with the program rate it yields SPDK's 5.25 GB/s random
  /// 4 kB write at QD 64 (Fig. 4b). CALIBRATED.
  TimePs write_cmd_overhead = ns(124);
  /// Cache acknowledgement latency (command arrival -> completion) floor.
  TimePs write_ack_base = ns(500);

  // --- Volatile write cache (durability tier, docs/DURABILITY.md) ---------
  /// Controller DRAM the device acknowledges writes into before they reach
  /// NAND. Written blocks older than this window are considered destaged
  /// (durable); younger ones are lost on power loss unless a Flush command
  /// intervened. Consumer controllers carry tens of MiB; the value only
  /// matters when a crash fault or power cycle is injected -- fault-free
  /// runs never observe it.
  Bytes write_cache_bytes{16 * MiB};
};

struct PcieProfile {
  /// Host root-complex <-> FPGA Gen3 x16 effective payload rate.
  double host_fpga_gb_s = 13.0;
  /// Round-trip latency of a read request to host DRAM (root complex).
  TimePs host_read_rtt = ns(900);
  /// Round-trip latency of a peer-to-peer read request to an FPGA BAR
  /// (through the switch, both directions).
  TimePs p2p_read_rtt = ns(1600);
  /// Posted-write one-way latency.
  TimePs posted_write_latency = ns(300);
  /// TLP header overhead charged per transaction on link serialization.
  std::uint32_t tlp_header_bytes = 24;
  /// Largest single TLP payload (max payload size).
  std::uint32_t max_payload = 512;
  /// How long an initiator waits before a lost non-posted request (injected
  /// by the fault layer) is reported as a completion timeout. Real ports
  /// allow 50 us - 50 ms; we model the aggressive end so recovery tests and
  /// fault benches stay fast. MODELED (PCIe Base Spec completion-timeout
  /// ranges), only reachable with fault injection armed.
  TimePs completion_timeout = us(50);

  // Non-overlapped fetch overhead per byte when the NVMe controller pulls
  // write payload over PCIe, by source. Derived from Fig. 4a: the write
  // bandwidth pairs scale multiplicatively with the program mode
  // (host 6.24/5.90 -> URAM 5.60/5.32 -> on-board DRAM 4.80/4.60), i.e. the
  // fetch path adds 1/F seconds per byte that does not overlap with NAND
  // programming: 1/5.60 = 1/6.24 + 1/F_uram  => F_uram ~ 54.6 GB/s;
  // 1/4.80 = 1/6.24 + 1/F_dram => F_dram ~ 20.8 GB/s. The paper attributes
  // the URAM term to PCIe P2P pacing (ILA-traced; IOMMU ruled out) and the
  // DRAM term to read/write turnaround on the single DRAM controller.
  // CALIBRATED (magnitudes), mechanism per paper Sec. 5.2.
  double p2p_fetch_overhead_gb_s = 54.6;       // FPGA BAR (URAM) source
  double onboard_dram_fetch_overhead_gb_s = 20.8;  // FPGA on-board DRAM source
  /// Host-sourced fetches overlap fully with programming.
  double host_fetch_overhead_gb_s = 0.0;  // 0 => no overhead term
};

struct FpgaProfile {
  /// Streamer clock: the 300 MHz memory-controller domain (Sec. 4.5).
  TimePs clock_period = ps(3334);
  /// AXI4-Stream data width (64 B = 512 bit); one beat per cycle =>
  /// 19.2 GB/s stream throughput.
  std::uint32_t stream_bytes_per_beat = 64;
  /// URAM access latency (pipelined, ~2 cycles).
  TimePs uram_latency = ps(2 * 3334);
  /// On-board DRAM: sustained bandwidth of one controller channel.
  double dram_gb_s = 19.2;
  /// DRAM closed-row access latency.
  TimePs dram_access_latency = ns(90);
  /// Bus turnaround penalty when a burst switches direction vs. the
  /// previous one (tRTW/tWTR plus controller scheduling).
  TimePs dram_turnaround = ns(60);
  /// Read-out engine request size when draining a DRAM buffer to the
  /// stream (Sec. 5.3: DRAM variants add latency after completion). The
  /// engine keeps a small pipeline, so a 4 kB drain costs several
  /// round-trips -- the +7 us / +9 us read-latency deltas in Fig. 4c.
  std::uint32_t readout_req_bytes = 512;

  // --- NVMe Streamer micro-architecture ------------------------------------
  /// In-flight command window = submission queue size (Sec. 7: "allows up
  /// to 64 in-flight commands").
  std::uint16_t queue_depth = 64;
  /// Streamer FSM cycles to accept, buffer-track and submit one command.
  /// The write path is longer (buffer fill bookkeeping, PRP regfile/offset
  /// setup before the doorbell). CALIBRATED: the write value reproduces the
  /// SNAcc-vs-SPDK random-write gap (4.8 vs 5.25 GB/s, Fig. 4b).
  std::uint32_t read_submit_cycles = 45;
  std::uint32_t write_submit_cycles = 256;
  /// Serial turnaround of the in-order retirement engine per command (ROB
  /// head scan, buffer free, CQ head doorbell). The read value is the
  /// random-read limiter of Fig. 4b (~1.6 GB/s at 4 kB commands);
  /// negligible for the sequential 1 MB commands of Fig. 4a. CALIBRATED.
  TimePs retire_gap_read = ns(2400);
  TimePs retire_gap_write = ns(180);
  /// How many completed-in-order commands the read-out engine prefetches
  /// from the data buffer while earlier data streams out. Hides the
  /// buffer-readout latency under load; a single idle command still sees
  /// the full readout latency (the DRAM deltas of Fig. 4c).
  std::uint32_t readout_prefetch = 8;
};

struct HostProfile {
  /// Per-IO software overhead on the SPDK completion path for reads
  /// (submission bookkeeping, poll-loop pickup, buffer handoff). Derived
  /// from Fig. 4c: SPDK read 57 us vs. FPGA-direct 34 us with identical
  /// device-side service. CALIBRATED. Amortized away at high queue depth.
  TimePs spdk_read_stack = us(26);
  /// Same for writes; small, keeping SPDK slightly *faster* than the
  /// streamer variants for single writes (Fig. 4c).
  TimePs spdk_write_stack = ns(700);
  /// Doorbell MMIO write cost from the CPU.
  TimePs doorbell_write = ns(150);
  /// Largest physically-contiguous DMA buffer the kernel driver allocates
  /// for the host-DRAM streamer variant (Sec. 4.3).
  std::uint64_t dma_chunk = 4 * MiB;
};

struct EthProfile {
  /// 100 G line rate.
  double line_gb_s = 12.5;
  /// Per-frame overhead: preamble + IFG + FCS etc.
  std::uint32_t frame_overhead_bytes = 38;
  std::uint32_t mtu = 4096;  // jumbo frames, as used for bulk image ingest
  /// Receiver FIFO and pause thresholds (802.3x).
  std::uint64_t rx_fifo_bytes = 256 * KiB;
  std::uint64_t pause_on_threshold = 192 * KiB;
  std::uint64_t pause_off_threshold = 64 * KiB;
  /// Pause quanta duration granted per pause frame.
  TimePs pause_quantum = ns(5120);  // 512 bit-times * 100 quanta at 100G
  TimePs wire_latency = ns(500);
};

struct GpuProfile {
  /// Batched MobileNet-V1 inference throughput on the A100 (224x224, fp16,
  /// batch 32) -- far above the pipeline's needs; the GPU reference is
  /// limited by transfer scheduling, not compute.
  double inference_fps = 12000;
  /// Per-batch dispatch overhead (PyTorch launch + sync + thread handoff).
  /// CALIBRATED to the 5.76 GB/s overall GPU-reference bandwidth (Fig. 6).
  TimePs batch_dispatch_overhead = us(260);
  std::uint32_t batch_size = 32;
  /// Host <-> GPU PCIe Gen4 x16 effective rate.
  double pcie_gb_s = 24.0;
};

struct FinnProfile {
  /// FINN MobileNet-V1 streaming PE throughput (paper cites it as chosen
  /// "to truly stress the infrastructure"); well above the 676 fps the
  /// storage path sustains.
  double inference_fps = 3000;
  TimePs pipeline_latency = us(250);
};

/// The full testbed profile. Default-constructed == the paper's setup.
struct CalibrationProfile {
  SsdProfile ssd;
  PcieProfile pcie;
  FpgaProfile fpga;
  HostProfile host;
  EthProfile eth;
  GpuProfile gpu;
  FinnProfile finn;

  /// Future-work variant (Sec. 7): PCIe Gen5 x4 SSD link.
  static CalibrationProfile gen5() {
    CalibrationProfile p;
    p.ssd.link_gb_s = 14.0;
    p.ssd.write_rate_fast_gb_s = 11.8;
    p.ssd.write_rate_slow_gb_s = 11.0;
    p.ssd.nand_read_ii_seq = us(1);
    return p;
  }
};

}  // namespace snacc
