// CRC-32C (Castagnoli) for on-device record integrity.
//
// The durability tier stores a checksum in every WAL record header (and over
// the record's value bytes) so recovery can tell a committed record from a
// torn or stale one (docs/DURABILITY.md). Software slice-by-one is plenty:
// checksums are computed once per KV record on the host side of the model,
// never per simulated byte moved.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace snacc {

namespace detail {

inline constexpr std::uint32_t kCrc32cPoly = 0x82F6'3B78u;  // reflected

inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// One-shot CRC-32C over a byte span.
inline constexpr std::uint32_t crc32c(std::span<const std::byte> data,
                                      std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (const std::byte b : data) {
    crc = (crc >> 8) ^
          detail::kCrc32cTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFF];
  }
  return ~crc;
}

}  // namespace snacc
