// Payload: the unit of data moved through streams, PCIe and memories.
//
// Bandwidth benches move many gigabytes; forcing every byte through real
// vectors would dominate runtime. A Payload therefore carries either real
// bytes (integrity tests, the case-study database records) or a *phantom*
// size-only body (pure bandwidth runs). All data-path components handle both
// transparently; mixing phantom and real data in one store degrades the
// overlapping range to phantom.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace snacc {

class Payload {
 public:
  Payload() = default;

  /// Size-only payload; contents are unspecified ("phantom").
  static Payload phantom(std::uint64_t size) {
    Payload p;
    p.size_ = size;
    return p;
  }
  static Payload phantom(Bytes size) { return phantom(size.value()); }

  /// Payload owning real bytes.
  static Payload bytes(std::vector<std::byte> data) {
    Payload p;
    p.size_ = data.size();
    p.data_ = std::make_shared<std::vector<std::byte>>(std::move(data));
    return p;
  }

  /// Convenience: payload with a repeating fill pattern (real bytes).
  static Payload filled(std::uint64_t size, std::uint8_t value) {
    std::vector<std::byte> v(size, static_cast<std::byte>(value));
    return bytes(std::move(v));
  }
  static Payload filled(Bytes size, std::uint8_t value) {
    return filled(size.value(), value);
  }

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool has_data() const { return data_ != nullptr; }

  std::span<const std::byte> view() const {
    assert(has_data());
    return {data_->data(), data_->size()};
  }

  /// Slice [offset, offset+len). Phantom slices stay phantom. Shares the
  /// underlying buffer when possible (copy only on sub-range of real data).
  Payload slice(std::uint64_t offset, std::uint64_t len) const {
    assert(offset + len <= size_);
    if (!has_data()) return phantom(len);
    if (offset == 0 && len == size_) return *this;
    std::vector<std::byte> v(data_->begin() + static_cast<std::ptrdiff_t>(offset),
                             data_->begin() + static_cast<std::ptrdiff_t>(offset + len));
    return bytes(std::move(v));
  }
  Payload slice(Bytes offset, Bytes len) const {
    return slice(offset.value(), len.value());
  }

  /// Concatenates two payloads; phantom-ness is contagious.
  static Payload concat(const Payload& a, const Payload& b) {
    if (!a.has_data() || !b.has_data()) return phantom(a.size_ + b.size_);
    std::vector<std::byte> v;
    v.reserve(a.size_ + b.size_);
    v.insert(v.end(), a.data_->begin(), a.data_->end());
    v.insert(v.end(), b.data_->begin(), b.data_->end());
    return bytes(std::move(v));
  }

  /// Concatenates many parts in one pass (linear, unlike repeated concat).
  /// Any phantom part degrades the whole result to phantom.
  static Payload gather(const std::vector<Payload>& parts) {
    std::uint64_t total = 0;
    bool real = true;
    for (const Payload& p : parts) {
      total += p.size();
      real = real && (p.has_data() || p.empty());
    }
    if (!real) return phantom(total);
    std::vector<std::byte> v;
    v.reserve(total);
    for (const Payload& p : parts) {
      if (p.empty()) continue;
      auto view = p.view();
      v.insert(v.end(), view.begin(), view.end());
    }
    return bytes(std::move(v));
  }

  bool content_equals(const Payload& other) const {
    if (size_ != other.size_) return false;
    if (!has_data() || !other.has_data()) return true;  // phantom matches anything
    return *data_ == *other.data_;
  }

 private:
  std::uint64_t size_ = 0;
  std::shared_ptr<std::vector<std::byte>> data_;
};

}  // namespace snacc
