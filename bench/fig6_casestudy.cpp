// Figure 6: bandwidth of the image-classification case study (Sec. 6.2).
//
// Paper: 16384 images (147 GB) streamed over 100 G Ethernet; host DRAM and
// SPDK reach ~6.1 GB/s (676 frames/s), URAM and on-board DRAM track their
// sequential-write numbers, the GPU reference reaches 5.76 GB/s. The NVMe
// write path limits throughput -- nowhere near the 12.5 GB/s line rate.
// Sec. 6.3: SPDK and GPU burn one CPU thread at 100 %; SNAcc none.
//
// We stream 512 images (4.6 GB) by default: the pipeline reaches steady
// state after a few images and the bandwidth matches longer runs.
#include <cstdio>
#include <cstdlib>

#include "apps/case_study.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace snacc;
  using namespace snacc::apps;
  using namespace snacc::bench;

  ImageStreamConfig cfg;
  cfg.count = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 512;

  print_header(
      "Figure 6 -- image classification case study bandwidth\n"
      "(100G ingest -> classify -> store image+classification on NVMe)");
  std::printf("Streaming %u images of %.2f MB (%.1f GB total)\n\n", cfg.count,
              cfg.bytes_per_image() / 1e6, cfg.total_bytes() / 1e9);

  struct Row {
    const char* name;
    double paper_gb_s;
    CaseStudyResult r;
  };
  Row rows[] = {
      {"SNAcc URAM", 5.55, run_snacc_case_study(core::Variant::kUram, cfg)},
      {"SNAcc On-board DRAM", 4.75,
       run_snacc_case_study(core::Variant::kOnboardDram, cfg)},
      {"SNAcc Host DRAM", 6.1,
       run_snacc_case_study(core::Variant::kHostDram, cfg)},
      {"SPDK reference", 6.1, run_spdk_case_study(cfg)},
      {"GPU reference (A100)", 5.76, run_gpu_case_study(cfg)},
  };
  JsonReport rep("fig6");
  for (const Row& row : rows) {
    if (!row.r.ok) {
      std::printf("%-22s FAILED TO COMPLETE\n", row.name);
      continue;
    }
    const std::string k = JsonReport::key(row.name);
    rep.metric(k + "_gb_s", row.r.bandwidth_gb_s());
    rep.metric(k + "_fps", row.r.fps());
    rep.metric(k + "_cpu_utilization", row.r.cpu_utilization);
    print_row(row.name, row.paper_gb_s, row.r.bandwidth_gb_s(), "GB/s");
    std::printf("    %-24s %7.0f frames/s   CPU %.0f%%   pause frames %llu\n",
                "", row.r.fps(), row.r.cpu_utilization * 100.0,
                static_cast<unsigned long long>(row.r.pause_frames));
  }
  std::printf(
      "\nPaper Fig. 6 shape: host DRAM == SPDK ~6.1 GB/s (676 fps at 9 MB),\n"
      "URAM/on-board DRAM track their Fig. 4a write numbers, GPU 5.76 GB/s.\n"
      "Sec. 6.3: only the SNAcc variants leave the CPU idle.\n");
  return 0;
}
