// Ablation (Sec. 5.2): "We observe that SPDK can achieve even higher
// bandwidth when the submission queue size is increased" -- a queue-depth
// sweep of the random 4 kB read workload for SPDK, plus the SNAcc streamer's
// window (its in-order refill makes depth matter much less).
#include "bench_common.hpp"

#include "common/rng.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kTotal = 128 * MiB;
constexpr std::uint64_t kIo = 4 * KiB;
constexpr std::uint64_t kRegionBlocks = 4u << 20;

double run_spdk(std::uint16_t qd) {
  spdk::DriverConfig cfg;
  cfg.queue_depth = qd;
  auto bed = SpdkBed::make(cfg);
  bed.sys->ssd().nand().force_mode(true);
  spdk::WorkloadResult res;
  bool done = false;
  auto io = [](SpdkBed* bed, spdk::WorkloadResult* out, bool* flag) -> sim::Task {
    co_await bed->driver->run_random(false, Bytes{kTotal}, Bytes{kIo},
                                     kRegionBlocks, 4242,
                                     out);
    *flag = true;
  };
  bed.run(io(&bed, &res, &done), 60);
  return done ? res.bandwidth_gb_s() : 0.0;
}

double run_snacc(std::uint16_t qd) {
  host::SnaccDeviceConfig cfg;
  cfg.streamer.queue_depth = qd;
  auto bed = SnaccBed::make(core::Variant::kHostDram, cfg);
  bed.sys->ssd().nand().force_mode(true);
  const std::uint64_t commands = kTotal / kIo;
  TimePs t0;
  TimePs t1;
  bool done = false;
  auto harness = [](SnaccBed* bed, std::uint64_t n, TimePs* a, TimePs* b,
                    bool* flag) -> sim::Task {
    auto* pe = bed->pe.get();
    *a = bed->sys->sim().now();
    struct Issuer {
      static sim::Task run(core::PeClient* pe, std::uint64_t count) {
        Xoshiro256 rng(4242);
        for (std::uint64_t i = 0; i < count; ++i) {
          co_await pe->start_read(Bytes{rng.below(kRegionBlocks) * kIo}, Bytes{kIo});
        }
      }
    };
    bed->sys->sim().spawn(Issuer::run(pe, n));
    for (std::uint64_t i = 0; i < n; ++i) co_await pe->collect_read(nullptr);
    *b = bed->sys->sim().now();
    *flag = true;
  };
  bed.run(harness(&bed, commands, &t0, &t1, &done), 120);
  return done ? gb_per_s(kTotal, t1 - t0) : 0.0;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header(
      "Ablation: queue-depth sweep, random 4 kB reads (Sec. 5.2)\n"
      "SPDK scales with depth (out-of-order harvest); the in-order SNAcc\n"
      "window is retirement-limited and barely moves.");
  std::printf("  %-8s %14s %20s\n", "depth", "SPDK [GB/s]",
              "SNAcc host [GB/s]");
  JsonReport rep("ablation_queue_depth");
  for (std::uint16_t qd : {16, 32, 64, 128, 256}) {
    const double spdk_gbs = run_spdk(qd);
    const double snacc_gbs = run_snacc(qd);
    std::printf("  %-8u %14.2f %20.2f\n", qd, spdk_gbs, snacc_gbs);
    const std::string k = "qd" + std::to_string(qd);
    rep.metric(k + "_spdk_gb_s", spdk_gbs);
    rep.metric(k + "_snacc_gb_s", snacc_gbs);
  }
  return 0;
}
