// The Sec. 7 outlook, quantified: "our single NVMe cannot keep-up with the
// 100G network rate, even though the PCIe bus is not fully loaded. We will
// tackle this [with] PCIe 5.0 [and] Multi-SSD Support."
//
// This bench re-runs the image-classification case study on the future
// testbed: a PCIe Gen5 x4 SSD (CalibrationProfile::gen5()), and separately a
// raw multi-SSD write path, and reports how close each gets to the 12.5 GB/s
// line rate of 100 G Ethernet.
#include <memory>

#include "apps/case_study.hpp"
#include "bench_common.hpp"
#include "snacc/striped_client.hpp"

namespace snacc::bench {
namespace {

double multi_ssd_gen5_write(std::uint32_t n) {
  host::SystemConfig sys_cfg;
  sys_cfg.ssd_count = n;
  sys_cfg.host_memory_bytes = 4 * GiB;
  sys_cfg.profile = CalibrationProfile::gen5();
  auto sys = std::make_unique<host::System>(sys_cfg);
  std::vector<std::unique_ptr<host::SnaccDevice>> devices;
  pcie::PortId shared = pcie::kInvalidPort;
  for (std::uint32_t i = 0; i < n; ++i) {
    sys->ssd(i).nand().force_mode(true);
    host::SnaccDeviceConfig cfg;
    cfg.streamer.variant = core::Variant::kHostDram;
    cfg.ssd_index = i;
    cfg.instance = i;
    cfg.shared_fpga_port = shared;
    devices.push_back(std::make_unique<host::SnaccDevice>(*sys, cfg));
    shared = devices.back()->fpga_port();
  }
  int ready = 0;
  for (auto& dev : devices) {
    auto boot = [](host::SnaccDevice* d, int* c) -> sim::Task {
      co_await d->init();
      ++*c;
    };
    sys->sim().spawn(boot(dev.get(), &ready));
  }
  sys->sim().run_until(seconds(1));
  if (ready != static_cast<int>(n)) return 0;

  std::vector<core::NvmeStreamer*> streamers;
  for (auto& dev : devices) streamers.push_back(&dev->streamer());
  core::StripedClient striped(streamers);
  const std::uint64_t total = 512 * MiB;
  TimePs t0;
  TimePs t1;
  bool done = false;
  auto io = [](host::System* sys, core::StripedClient* striped, TimePs* a,
               TimePs* b, bool* flag) -> sim::Task {
    *a = sys->sim().now();
    co_await striped->write(Bytes{}, Payload::phantom(total));
    *b = sys->sim().now();
    *flag = true;
  };
  sys->sim().spawn(io(sys.get(), &striped, &t0, &t1, &done));
  sys->sim().run_until(sys->sim().now() + seconds(60));
  return done ? gb_per_s(total, t1 - t0) : 0.0;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::apps;
  using namespace snacc::bench;
  print_header(
      "Sec. 7 outlook: closing the gap to the 100 G line rate (12.5 GB/s)");

  std::printf("Case study on the paper's Gen4 testbed vs. a Gen5 x4 SSD:\n");
  ImageStreamConfig cfg;
  cfg.count = 256;
  const CaseStudyResult gen4 =
      run_snacc_case_study(core::Variant::kHostDram, cfg);
  const CaseStudyResult gen5 = run_snacc_case_study(
      core::Variant::kHostDram, cfg, CalibrationProfile::gen5());
  JsonReport rep("ablation_future_100g");
  rep.metric("gen4_gb_s", gen4.bandwidth_gb_s());
  rep.metric("gen5_gb_s", gen5.bandwidth_gb_s());
  std::printf("  Gen4 x4 SSD   %5.2f GB/s  (%4.0f%% of line rate, %llu pause "
              "transitions)\n",
              gen4.bandwidth_gb_s(), gen4.bandwidth_gb_s() / 12.5 * 100,
              static_cast<unsigned long long>(gen4.pause_frames));
  std::printf("  Gen5 x4 SSD   %5.2f GB/s  (%4.0f%% of line rate, %llu pause "
              "transitions)\n",
              gen5.bandwidth_gb_s(), gen5.bandwidth_gb_s() / 12.5 * 100,
              static_cast<unsigned long long>(gen5.pause_frames));

  std::printf("\nRaw sequential-write path, Gen5 SSDs striped:\n");
  for (std::uint32_t n : {1u, 2u}) {
    const double gbs = multi_ssd_gen5_write(n);
    std::printf("  %u x Gen5 SSD %5.2f GB/s  (%4.0f%% of line rate)\n", n, gbs,
                gbs / 12.5 * 100);
    rep.metric("gen5_x" + std::to_string(n) + "_write_gb_s", gbs);
  }
  std::printf(
      "\nWith one Gen5 drive the storage path is no longer the bottleneck;\n"
      "the ingest saturates the 100 G link itself, as Sec. 7 anticipates.\n");
  return 0;
}
