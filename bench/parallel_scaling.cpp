// Parallel-kernel scaling sweep: aggregate wall-clock throughput of a
// SimCluster as the same multi-node topology is carved into 1/2/4/8 event
// domains.
//
// Two workloads:
//
//   * events  -- the sim_kernel timer storm, fixed 256-task total split
//                across domains with a heartbeat token ring through Mailbox
//                edges (pure kernel + sync-machinery scaling);
//   * goodput -- a fig4a-style sequential-write ingest per *node*: each node
//                is a full testbed (host + PCIe fabric + SSD + SNAcc card)
//                on its own domain, nodes exchange heartbeat frames over
//                cross-domain Ethernet wires (eth::Wire's two-domain
//                constructor), and the figure of merit is the sum of
//                per-node goodput divided by the wall time of the whole
//                cluster run.
//
// Like sim_kernel_bench this measures the simulator, not the system under
// study: per-node *simulated* goodput is identical at every domain count
// (seeded-merge determinism); only wall time changes. On a single-core
// machine the curve is flat or slightly negative (sync overhead with no
// parallelism to pay for it) -- the optional floor flags are therefore only
// enforced when the hardware can actually run 4 domains concurrently.
//
// Usage:
//   parallel_scaling [--min-speedup-4 X]
// Exits non-zero when hardware_concurrency >= 4 and the 4-domain aggregate
// events/s is below X times the 1-domain run.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "eth/mac.hpp"
#include "sim/cluster.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::bench {
namespace {

// snacc-lint: allow(nondeterminism): wall-clock is the measurement here
double seconds_since(std::chrono::steady_clock::time_point t0) {
  // snacc-lint: allow(nondeterminism): wall-clock is the measurement here
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// -- Workload 1: timer storm + heartbeat ring ------------------------------

sim::Task timer_task(sim::Domain* d, std::uint64_t seed, int rounds) {
  std::uint64_t lcg = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int i = 0; i < rounds; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    co_await d->delay(ps(1 + (lcg >> 33) % 5000));
  }
}

sim::Task ring_seed(sim::Mailbox<int>* out, sim::Mailbox<int>* in, int laps) {
  co_await out->push(0);
  for (int i = 0; i < laps; ++i) {
    auto v = co_await in->pop();
    if (!v) break;
    if (i + 1 < laps) co_await out->push(*v + 1);
  }
  out->close();
}

sim::Task ring_forward(sim::Mailbox<int>* in, sim::Mailbox<int>* out) {
  while (auto v = co_await in->pop()) co_await out->push(*v);
  out->close();
}

struct EventsResult {
  double events_per_sec = 0;
  std::uint64_t events = 0;
};

EventsResult bench_events(std::uint32_t domains) {
  constexpr int kTasks = 256;
  constexpr int kRounds = 12000;
  constexpr int kLaps = 2000;
  sim::SimCluster cluster(domains);
  for (int t = 0; t < kTasks; ++t) {
    sim::Domain& d = cluster.domain(static_cast<std::uint32_t>(t) % domains);
    d.spawn(timer_task(&d, static_cast<std::uint64_t>(t) + 1, kRounds));
  }
  std::vector<std::unique_ptr<sim::Mailbox<int>>> ring;
  if (domains > 1) {
    for (std::uint32_t i = 0; i < domains; ++i) {
      ring.push_back(std::make_unique<sim::Mailbox<int>>(
          cluster.domain(i), cluster.domain((i + 1) % domains), 4, ns(100)));
    }
    cluster.domain(0).spawn(
        ring_seed(ring.front().get(), ring.back().get(), kLaps));
    for (std::uint32_t i = 1; i < domains; ++i) {
      cluster.domain(i).spawn(ring_forward(ring[i - 1].get(), ring[i].get()));
    }
  }
  // snacc-lint: allow(nondeterminism): wall-clock is the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  const double dt = seconds_since(t0);
  EventsResult r;
  r.events = cluster.events_processed();
  r.events_per_sec = static_cast<double>(r.events) / dt;
  return r;
}

// -- Workload 2: one ingest node per domain, heartbeats over Ethernet ------

/// One testbed node bound to a cluster domain: System + SNAcc card, booted,
/// with a PE client driving a sequential write.
struct Node {
  std::unique_ptr<host::System> sys;
  std::unique_ptr<host::SnaccDevice> dev;
  std::unique_ptr<core::PeClient> pe;
  TimePs write_start;
  TimePs write_end;
  bool done = false;
};

constexpr std::uint64_t kBytesPerNode = 64 * MiB;

sim::Task node_ingest(Node* node, sim::Simulator* sim) {
  node->write_start = sim->now();
  co_await node->pe->write(Bytes{0}, Payload::phantom(kBytesPerNode));
  node->write_end = sim->now();
  node->done = true;
}

/// Periodic cross-node heartbeat: each node MACs a small frame to its ring
/// neighbour for the duration of the ingest, keeping the cross-domain wires
/// (and therefore the conservative windows) active.
sim::Task heartbeat_tx(eth::Mac* mac, sim::Simulator* sim, int beats) {
  for (int i = 0; i < beats; ++i) {
    co_await sim->delay(us(50));
    eth::Frame f(Payload::phantom(64), /*id=*/0, /*off=*/0, /*eoo=*/false);
    co_await mac->send(std::move(f));
  }
  mac->close_tx();
}

sim::Task heartbeat_rx(eth::Mac* mac, std::uint64_t* received) {
  for (;;) {
    std::optional<eth::Frame> f;
    co_await mac->recv_accounted(&f);
    if (!f) co_return;
    ++*received;
  }
}

struct GoodputResult {
  double aggregate_gb_s = 0;       // sum of per-node simulated goodput
  double wall_seconds = 0;         // cluster wall time for the whole run
  double sim_goodput_gb_s = 0;     // per-node goodput (identical across nodes)
  std::uint64_t heartbeats = 0;
  bool all_done = false;
};

GoodputResult bench_goodput(std::uint32_t domains) {
  sim::SimCluster cluster(domains);
  std::vector<Node> nodes(domains);
  for (std::uint32_t i = 0; i < domains; ++i) {
    host::SystemConfig sys_cfg;
    Node& n = nodes[i];
    n.sys = std::make_unique<host::System>(cluster.domain(i), sys_cfg);
    host::SnaccDeviceConfig cfg;
    cfg.streamer.variant = core::Variant::kHostDram;
    n.dev = std::make_unique<host::SnaccDevice>(*n.sys, cfg);
    n.sys->ssd().nand().force_mode(true);
  }
  // Boot each node on its own clock; no cross-domain traffic exists yet, so
  // driving the domains directly (outside cluster sync) is safe and leaves
  // every clock at exactly 1 s.
  for (Node& n : nodes) {
    bool booted = false;
    auto boot = [](host::SnaccDevice* dev, bool* flag) -> sim::Task {
      co_await dev->init();
      *flag = true;
    };
    n.sys->sim().spawn(boot(n.dev.get(), &booted));
    n.sys->sim().run_until(seconds(1));
    if (!booted) {
      std::fprintf(stderr, "parallel_scaling: node init failed\n");
      std::abort();
    }
    n.pe = std::make_unique<core::PeClient>(n.dev->streamer());
  }

  // Ring of full-duplex cross-domain Ethernet links between neighbours.
  EthProfile eth_profile;
  std::vector<std::unique_ptr<eth::Wire>> wires;
  std::vector<std::unique_ptr<eth::Mac>> macs;
  std::uint64_t heartbeats_received = 0;
  if (domains > 1) {
    for (std::uint32_t i = 0; i < domains; ++i) {
      sim::Domain& a = cluster.domain(i);
      sim::Domain& b = cluster.domain((i + 1) % domains);
      auto fwd = std::make_unique<eth::Wire>(a, b, eth_profile);  // a -> b
      auto rev = std::make_unique<eth::Wire>(b, a, eth_profile);  // b -> a
      auto mac_a = std::make_unique<eth::Mac>(a, eth_profile, *fwd, *rev,
                                              "hb-tx");
      auto mac_b = std::make_unique<eth::Mac>(b, eth_profile, *rev, *fwd,
                                              "hb-rx");
      mac_a->start();
      mac_b->start();
      a.spawn(heartbeat_tx(mac_a.get(), &a, /*beats=*/200));
      b.spawn(heartbeat_rx(mac_b.get(), &heartbeats_received));
      wires.push_back(std::move(fwd));
      wires.push_back(std::move(rev));
      macs.push_back(std::move(mac_a));
      macs.push_back(std::move(mac_b));
    }
  }

  for (std::uint32_t i = 0; i < domains; ++i) {
    cluster.domain(i).spawn(node_ingest(&nodes[i], &nodes[i].sys->sim()));
  }

  // snacc-lint: allow(nondeterminism): wall-clock is the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(seconds(11));
  GoodputResult r;
  r.wall_seconds = seconds_since(t0);
  r.heartbeats = heartbeats_received;
  r.all_done = true;
  for (const Node& n : nodes) {
    if (!n.done) {
      r.all_done = false;
      continue;
    }
    const double gb_s = gb_per_s(kBytesPerNode, n.write_end - n.write_start);
    r.sim_goodput_gb_s = gb_s;  // identical across nodes (same seed/config)
    r.aggregate_gb_s += gb_s;
  }
  return r;
}

}  // namespace
}  // namespace snacc::bench

int main(int argc, char** argv) {
  using namespace snacc;
  using namespace snacc::bench;
  double min_speedup_4 = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup-4") == 0 && i + 1 < argc) {
      min_speedup_4 = std::atof(argv[++i]);
    }
  }

  print_header("Parallel scaling -- events/s and fig4a-style goodput vs domains");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("  hardware threads: %u\n\n", hw);

  const std::uint32_t sweep[] = {1, 2, 4, 8};
  JsonReport rep("parallel_scaling");
  rep.field("threads", hw);
  rep.field("domains", 8);

  double eps1 = 0.0, eps4 = 0.0;
  for (std::uint32_t d : sweep) {
    // Best-of-2: deterministic workload, wall time varies with OS noise.
    EventsResult er;
    for (int r = 0; r < 2; ++r) {
      EventsResult t = bench_events(d);
      if (t.events_per_sec > er.events_per_sec) er = t;
    }
    GoodputResult gr = bench_goodput(d);
    if (d == 1) eps1 = er.events_per_sec;
    if (d == 4) eps4 = er.events_per_sec;
    std::printf(
        "  %u domain(s): %12.0f events/s   aggregate %6.2f GB/s "
        "(per-node %5.2f GB/s sim, %.2fs wall, %" PRIu64 " heartbeats)%s\n",
        d, er.events_per_sec, gr.aggregate_gb_s, gr.sim_goodput_gb_s,
        gr.wall_seconds, gr.heartbeats, gr.all_done ? "" : "  [INCOMPLETE]");
    const std::string suffix = "_domains_" + std::to_string(d);
    rep.metric("events_per_sec" + suffix, er.events_per_sec);
    rep.metric("aggregate_goodput_gb_s" + suffix, gr.aggregate_gb_s);
    rep.metric("node_goodput_gb_s" + suffix, gr.sim_goodput_gb_s);
    rep.metric("goodput_wall_s" + suffix, gr.wall_seconds);
    if (!gr.all_done) {
      std::fprintf(stderr, "FAIL: ingest incomplete at %u domains\n", d);
      return 1;
    }
  }
  const double speedup4 = eps1 > 0.0 ? eps4 / eps1 : 0.0;
  std::printf("\n  events/s speedup at 4 domains vs 1: %.2fx\n", speedup4);
  rep.metric("events_speedup_4", speedup4);
  rep.write();

  if (min_speedup_4 > 0.0 && hw >= 4 && speedup4 < min_speedup_4) {
    std::fprintf(stderr,
                 "FAIL: 4-domain speedup %.2fx below required %.2fx on a "
                 "%u-thread machine (parallel kernel regression?)\n",
                 speedup4, min_speedup_4, hw);
    return 1;
  }
  if (min_speedup_4 > 0.0 && hw < 4) {
    std::printf("  (speedup floor skipped: only %u hardware threads)\n", hw);
  }
  return 0;
}
