// Shared infrastructure for the paper-reproduction benches.
//
// Each bench binary rebuilds the testbed (host + PCIe + SSD [+ FPGA]) in a
// fresh simulation, drives the workload of one paper table/figure, and
// prints paper-reported vs. measured values side by side. Results are
// *simulated* time -- wall-clock microbenchmarking (google-benchmark style)
// would measure the simulator, not the system under study.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"
#include "spdk/driver.hpp"

namespace snacc::bench {

/// Machine-readable bench results: collects (key, value) metrics and writes
/// them as `BENCH_<name>.json` into $SNACC_BENCH_OUT (or the working
/// directory). Stdout is deliberately untouched -- the human-readable figure
/// output is compared bit-for-bit across kernel changes, so all machine
/// output goes to a side file. CI uploads these files as artifacts.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  void metric(std::string key, double value) {
    metrics_.emplace_back(std::move(key), value);
  }

  /// Top-level integer field next to "bench" (run shape, not a measurement:
  /// thread counts, domain counts, iteration totals). Keys repeat last-wins
  /// at the consumer, so set each once.
  void field(std::string key, std::uint64_t value) {
    fields_.emplace_back(std::move(key), value);
  }

  /// Lower-cases and squashes a display label ("On-board DRAM") into a JSON
  /// key fragment ("on_board_dram").
  static std::string key(const std::string& label) {
    std::string out;
    bool sep = false;
    for (char ch : label) {
      if ((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9')) {
        out += ch;
        sep = false;
      } else if (ch >= 'A' && ch <= 'Z') {
        out += static_cast<char>(ch - 'A' + 'a');
        sep = false;
      } else if (!out.empty() && !sep) {
        out += '_';
        sep = true;
      }
    }
    if (!out.empty() && out.back() == '_') out.pop_back();
    return out;
  }

  /// Writes the file (idempotent; also runs from the destructor).
  void write() {
    if (written_) return;
    written_ = true;
    const char* dir = std::getenv("SNACC_BENCH_OUT");
    const std::string path = (dir && *dir ? std::string(dir) + "/" : std::string()) +
                             "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",", name_.c_str());
    for (const auto& [k, v] : fields_) {
      std::fprintf(f, "\n  \"%s\": %llu,", k.c_str(),
                   static_cast<unsigned long long>(v));
    }
    std::fprintf(f, "\n  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", i ? "," : "",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::uint64_t>> fields_;
  std::vector<std::pair<std::string, double>> metrics_;
  bool written_ = false;
};

/// A testbed with one SNAcc variant attached and initialized.
struct SnaccBed {
  std::unique_ptr<host::System> sys;
  std::unique_ptr<host::SnaccDevice> dev;
  std::unique_ptr<core::PeClient> pe;

  static SnaccBed make(core::Variant variant, host::SnaccDeviceConfig cfg = {},
                       host::SystemConfig sys_cfg = {}) {
    SnaccBed bed;
    bed.sys = std::make_unique<host::System>(sys_cfg);
    cfg.streamer.variant = variant;
    bed.dev = std::make_unique<host::SnaccDevice>(*bed.sys, cfg);
    bool done = false;
    auto boot = [](host::SnaccDevice* dev, bool* flag) -> sim::Task {
      co_await dev->init();
      *flag = true;
    };
    bed.sys->sim().spawn(boot(bed.dev.get(), &done));
    bed.sys->sim().run_until(seconds(1));
    if (!done) {
      std::fprintf(stderr, "SNAcc init failed\n");
      std::abort();
    }
    bed.pe = std::make_unique<core::PeClient>(bed.dev->streamer());
    return bed;
  }

  /// Runs a task to completion (bounded by `budget` simulated seconds).
  void run(sim::Task task, std::uint64_t budget_s = 60) {
    sys->sim().spawn(std::move(task));
    sys->sim().run_until(sys->sim().now() + seconds(budget_s));
  }
};

/// A testbed with the SPDK baseline initialized.
struct SpdkBed {
  std::unique_ptr<host::System> sys;
  std::unique_ptr<spdk::Driver> driver;

  static SpdkBed make(spdk::DriverConfig cfg = {},
                      host::SystemConfig sys_cfg = {}) {
    SpdkBed bed;
    bed.sys = std::make_unique<host::System>(sys_cfg);
    bed.driver = std::make_unique<spdk::Driver>(
        bed.sys->sim(), bed.sys->fabric(), bed.sys->host_mem(),
        host::addr_map::kHostDramBase, bed.sys->ssd(),
        bed.sys->config().profile.host, cfg);
    bool done = false;
    auto boot = [](spdk::Driver* d, bool* flag) -> sim::Task {
      co_await d->init();
      *flag = true;
    };
    bed.sys->sim().spawn(boot(bed.driver.get(), &done));
    bed.sys->sim().run_until(seconds(1));
    if (!done) {
      std::fprintf(stderr, "SPDK init failed\n");
      std::abort();
    }
    return bed;
  }

  void run(sim::Task task, std::uint64_t budget_s = 60) {
    sys->sim().spawn(std::move(task));
    sys->sim().run_until(sys->sim().now() + seconds(budget_s));
  }
};

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_row(const std::string& label, double paper, double measured,
                      const char* unit) {
  const double dev =
      paper != 0.0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("  %-28s paper %7.2f %-5s  measured %7.2f %-5s  (%+.1f%%)\n",
              label.c_str(), paper, unit, measured, unit, dev);
}

}  // namespace snacc::bench
