// Shared infrastructure for the paper-reproduction benches.
//
// Each bench binary rebuilds the testbed (host + PCIe + SSD [+ FPGA]) in a
// fresh simulation, drives the workload of one paper table/figure, and
// prints paper-reported vs. measured values side by side. Results are
// *simulated* time -- wall-clock microbenchmarking (google-benchmark style)
// would measure the simulator, not the system under study.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "host/snacc_device.hpp"
#include "host/system.hpp"
#include "snacc/pe_client.hpp"
#include "spdk/driver.hpp"

namespace snacc::bench {

/// A testbed with one SNAcc variant attached and initialized.
struct SnaccBed {
  std::unique_ptr<host::System> sys;
  std::unique_ptr<host::SnaccDevice> dev;
  std::unique_ptr<core::PeClient> pe;

  static SnaccBed make(core::Variant variant, host::SnaccDeviceConfig cfg = {},
                       host::SystemConfig sys_cfg = {}) {
    SnaccBed bed;
    bed.sys = std::make_unique<host::System>(sys_cfg);
    cfg.streamer.variant = variant;
    bed.dev = std::make_unique<host::SnaccDevice>(*bed.sys, cfg);
    bool done = false;
    auto boot = [](host::SnaccDevice* dev, bool* flag) -> sim::Task {
      co_await dev->init();
      *flag = true;
    };
    bed.sys->sim().spawn(boot(bed.dev.get(), &done));
    bed.sys->sim().run_until(seconds(1));
    if (!done) {
      std::fprintf(stderr, "SNAcc init failed\n");
      std::abort();
    }
    bed.pe = std::make_unique<core::PeClient>(bed.dev->streamer());
    return bed;
  }

  /// Runs a task to completion (bounded by `budget` simulated seconds).
  void run(sim::Task task, std::uint64_t budget_s = 60) {
    sys->sim().spawn(std::move(task));
    sys->sim().run_until(sys->sim().now() + seconds(budget_s));
  }
};

/// A testbed with the SPDK baseline initialized.
struct SpdkBed {
  std::unique_ptr<host::System> sys;
  std::unique_ptr<spdk::Driver> driver;

  static SpdkBed make(spdk::DriverConfig cfg = {},
                      host::SystemConfig sys_cfg = {}) {
    SpdkBed bed;
    bed.sys = std::make_unique<host::System>(sys_cfg);
    bed.driver = std::make_unique<spdk::Driver>(
        bed.sys->sim(), bed.sys->fabric(), bed.sys->host_mem(),
        host::addr_map::kHostDramBase, bed.sys->ssd(),
        bed.sys->config().profile.host, cfg);
    bool done = false;
    auto boot = [](spdk::Driver* d, bool* flag) -> sim::Task {
      co_await d->init();
      *flag = true;
    };
    bed.sys->sim().spawn(boot(bed.driver.get(), &done));
    bed.sys->sim().run_until(seconds(1));
    if (!done) {
      std::fprintf(stderr, "SPDK init failed\n");
      std::abort();
    }
    return bed;
  }

  void run(sim::Task task, std::uint64_t budget_s = 60) {
    sys->sim().spawn(std::move(task));
    sys->sim().run_until(sys->sim().now() + seconds(budget_s));
  }
};

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_row(const std::string& label, double paper, double measured,
                      const char* unit) {
  const double dev =
      paper != 0.0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("  %-28s paper %7.2f %-5s  measured %7.2f %-5s  (%+.1f%%)\n",
              label.c_str(), paper, unit, measured, unit, dev);
}

}  // namespace snacc::bench
