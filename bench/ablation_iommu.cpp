// Ablation (Sec. 5.2): "Furthermore, disabling the IOMMU had no affect" on
// the URAM variant's P2P write bandwidth -- the pacing limit is in the PCIe
// P2P path itself, not in address translation. This bench measures
// sequential writes with the IOMMU enabled and disabled for all variants.
#include "bench_common.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kTotal = 512 * MiB;

double run(core::Variant variant, bool iommu) {
  host::SystemConfig sys_cfg;
  sys_cfg.iommu_enabled = iommu;
  auto bed = SnaccBed::make(variant, {}, sys_cfg);
  bed.sys->ssd().nand().force_mode(true);
  TimePs t0;
  TimePs t1;
  bool done = false;
  auto io = [](SnaccBed* bed, TimePs* a, TimePs* b, bool* flag) -> sim::Task {
    *a = bed->sys->sim().now();
    co_await bed->pe->write(Bytes{0}, Payload::phantom(kTotal));
    *b = bed->sys->sim().now();
    *flag = true;
  };
  bed.run(io(&bed, &t0, &t1, &done), 30);
  return done ? gb_per_s(kTotal, t1 - t0) : 0.0;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header(
      "Ablation: IOMMU on/off (Sec. 5.2 -- 'disabling the IOMMU had no "
      "affect')");
  JsonReport rep("ablation_iommu");
  for (core::Variant v : {core::Variant::kUram, core::Variant::kOnboardDram,
                          core::Variant::kHostDram}) {
    const double on = run(v, true);
    const double off = run(v, false);
    const std::string k = JsonReport::key(core::variant_name(v));
    rep.metric(k + "_iommu_on_gb_s", on);
    rep.metric(k + "_iommu_off_gb_s", off);
    std::printf("  %-14s IOMMU on %5.2f GB/s   IOMMU off %5.2f GB/s   "
                "(delta %+.2f%%)\n",
                core::variant_name(v), on, off,
                on > 0 ? (off - on) / on * 100.0 : 0.0);
  }
  return 0;
}
