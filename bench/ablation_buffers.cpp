// Ablation: buffer design choices.
//   * Sec. 5.2: "the smaller 4 MB URAM buffer poses no limitation on
//     bandwidth compared to the 64 MB DRAM buffer" -- URAM size sweep.
//   * Sec. 7 "HBM": multi-bank buffers should recover the on-board DRAM
//     variant's write bandwidth lost to controller turnaround.
#include "bench_common.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kTotal = 512 * MiB;

struct SeqResult {
  double write_gb_s;
  double read_gb_s;
};

SeqResult run(core::Variant variant, std::uint64_t uram_bytes = 4 * MiB) {
  host::SnaccDeviceConfig cfg;
  cfg.uram_bytes = Bytes{uram_bytes};
  auto bed = SnaccBed::make(variant, cfg);
  bed.sys->ssd().nand().force_mode(true);
  TimePs t0;
  TimePs tw;
  TimePs tr;
  bool done = false;
  auto io = [](SnaccBed* bed, TimePs* a, TimePs* b, TimePs* c,
               bool* flag) -> sim::Task {
    *a = bed->sys->sim().now();
    co_await bed->pe->write(Bytes{0}, Payload::phantom(kTotal));
    *b = bed->sys->sim().now();
    co_await bed->pe->read(Bytes{0}, Bytes{kTotal}, nullptr);
    *c = bed->sys->sim().now();
    *flag = true;
  };
  bed.run(io(&bed, &t0, &tw, &tr, &done), 30);
  if (!done) return {0, 0};
  return {gb_per_s(kTotal, tw - t0), gb_per_s(kTotal, tr - tw)};
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header("Ablation: buffer placement and sizing");
  JsonReport rep("ablation_buffers");

  std::printf("URAM buffer size sweep (Sec. 5.2: 4 MB is not a limit):\n");
  for (std::uint64_t mb : {1ull, 2ull, 4ull, 8ull}) {
    const auto r = run(core::Variant::kUram, mb * MiB);
    std::printf("  %2llu MB URAM   seq-write %5.2f GB/s   seq-read %5.2f GB/s\n",
                static_cast<unsigned long long>(mb), r.write_gb_s, r.read_gb_s);
    const std::string k = "uram_" + std::to_string(mb) + "mb";
    rep.metric(k + "_write_gb_s", r.write_gb_s);
    rep.metric(k + "_read_gb_s", r.read_gb_s);
  }

  std::printf("\nBuffer placement (Sec. 4.3 variants + Sec. 7 HBM):\n");
  for (core::Variant v : {core::Variant::kUram, core::Variant::kOnboardDram,
                          core::Variant::kHbm, core::Variant::kHostDram}) {
    const auto r = run(v);
    std::printf("  %-14s seq-write %5.2f GB/s   seq-read %5.2f GB/s\n",
                core::variant_name(v), r.write_gb_s, r.read_gb_s);
    const std::string k = JsonReport::key(core::variant_name(v));
    rep.metric(k + "_write_gb_s", r.write_gb_s);
    rep.metric(k + "_read_gb_s", r.read_gb_s);
  }
  std::printf(
      "\nExpected: HBM matches URAM's 5.6 GB/s writes (no DRAM turnaround)\n"
      "while offering DRAM-class 64 MB buffers; host DRAM remains the\n"
      "fastest write path (no P2P pacing).\n");
  return 0;
}
