// Table 1: FPGA resource utilization of the three NVMe Streamer variants on
// the Alveo U280 (analytic model; see snacc/resource_model.hpp for the
// per-feature decomposition and its calibration).
#include <cstdio>

#include "bench_common.hpp"
#include "snacc/resource_model.hpp"

int main() {
  using namespace snacc;
  using namespace snacc::core;

  std::printf("\n================================================================\n");
  std::printf("Table 1 -- FPGA resource utilization of SNAcc's NVMe Streamer\n");
  std::printf("================================================================\n");
  std::printf("Paper (Alveo U280):\n");
  std::printf("  URAM           LUT   7260 (0.6%%)  FF   8388 (0.3%%)  BRAM -"
              "              URAM 4 MB (13.3%%)  DRAM -\n");
  std::printf("  On-board DRAM  LUT  14063 (1.1%%)  FF  16487 (0.6%%)  BRAM 24"
              " (1.2%%)      URAM -             DRAM 128 MB\n");
  std::printf("  Host DRAM      LUT  12228 (0.9%%)  FF  13373 (0.5%%)  BRAM 17.5"
              " (0.9%%)    URAM -             DRAM 128 MB*\n");
  std::printf("  (* pinned host memory)\n\nModel:\n");

  bench::JsonReport rep("table1");
  for (Variant v : {Variant::kUram, Variant::kOnboardDram, Variant::kHostDram}) {
    StreamerConfig cfg;
    cfg.variant = v;
    const ResourceUsage u = estimate_resources(cfg);
    std::printf("  %s\n", format_table1_row(v, u).c_str());
    const std::string k = bench::JsonReport::key(variant_name(v));
    rep.metric(k + "_lut", u.lut);
    rep.metric(k + "_ff", u.ff);
    rep.metric(k + "_bram_36k", u.bram_36k);
    rep.metric(k + "_uram_bytes", static_cast<double>(u.uram_bytes));
    rep.metric(k + "_dram_bytes", static_cast<double>(u.dram_bytes));
  }

  std::printf("\nSec. 7 out-of-order retirement extension (model estimate):\n");
  for (Variant v : {Variant::kUram, Variant::kOnboardDram, Variant::kHostDram}) {
    StreamerConfig cfg;
    cfg.variant = v;
    cfg.out_of_order = true;
    const ResourceUsage u = estimate_resources(cfg);
    std::printf("  %s\n", format_table1_row(v, u).c_str());
    const std::string k = bench::JsonReport::key(variant_name(v)) + "_ooo";
    rep.metric(k + "_lut", u.lut);
    rep.metric(k + "_ff", u.ff);
    rep.metric(k + "_bram_36k", u.bram_36k);
  }
  return 0;
}
