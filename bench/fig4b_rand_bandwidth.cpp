// Figure 4b: bandwidth of random 4 kB accesses at queue depth 64.
//
// Paper values: random read -- SNAcc ~1.6 GB/s for all variants (the
// in-order retirement penalty), SPDK ~4.5 GB/s (out-of-order harvesting
// keeps QD 64 busy). Random write -- host DRAM 4.8 vs SPDK 5.25 GB/s, the
// other two variants slightly lower (fetch-path overheads); out-of-order
// execution matters less because the controller's write cache acknowledges
// quickly and nearly in order.
//
// The paper transfers 1 GB total; we use 256 MiB (65536 commands) -- the
// workload reaches steady state within a few thousand commands and the
// bandwidth is unchanged, while the event count stays tractable.
#include "bench_common.hpp"

#include "common/rng.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kTotal = 256 * MiB;
constexpr std::uint64_t kIo = 4 * KiB;
constexpr std::uint64_t kCommands = kTotal / kIo;
constexpr std::uint64_t kRegionBlocks = 4u << 20;  // 16 GiB window

sim::Task snacc_rand_reads(core::PeClient* pe, sim::Simulator* sim,
                           double* gb_s) {
  Xoshiro256 rng(1234);
  const TimePs t0 = sim->now();
  // Issue and collect concurrently: the issuer task feeds the command
  // stream while this task drains responses.
  struct Issuer {
    static sim::Task run(core::PeClient* pe) {
      Xoshiro256 rng(1234);
      for (std::uint64_t i = 0; i < kCommands; ++i) {
        const std::uint64_t lba = rng.below(kRegionBlocks);
        co_await pe->start_read(Bytes{lba * kIo}, Bytes{kIo});
      }
    }
  };
  sim->spawn(Issuer::run(pe));
  for (std::uint64_t i = 0; i < kCommands; ++i) {
    co_await pe->collect_read(nullptr);
  }
  *gb_s = gb_per_s(kTotal, sim->now() - t0);
}

sim::Task snacc_rand_writes(core::PeClient* pe, sim::Simulator* sim,
                            double* gb_s) {
  const TimePs t0 = sim->now();
  struct Issuer {
    static sim::Task run(core::PeClient* pe) {
      Xoshiro256 rng(5678);
      for (std::uint64_t i = 0; i < kCommands; ++i) {
        const std::uint64_t lba = rng.below(kRegionBlocks);
        co_await pe->start_write(Bytes{lba * kIo}, Payload::phantom(kIo),
                                 Bytes{kIo});
      }
    }
  };
  sim->spawn(Issuer::run(pe));
  for (std::uint64_t i = 0; i < kCommands; ++i) {
    co_await pe->wait_write_response();
  }
  *gb_s = gb_per_s(kTotal, sim->now() - t0);
}

struct RandResult {
  double read_gb_s = 0;
  double write_gb_s = 0;
};

RandResult run_snacc(core::Variant variant) {
  RandResult r;
  {
    auto bed = SnaccBed::make(variant);
    bed.sys->ssd().nand().force_mode(true);
    bed.run(snacc_rand_reads(bed.pe.get(), &bed.sys->sim(), &r.read_gb_s), 30);
  }
  {
    auto bed = SnaccBed::make(variant);
    bed.sys->ssd().nand().force_mode(true);
    bed.run(snacc_rand_writes(bed.pe.get(), &bed.sys->sim(), &r.write_gb_s), 30);
  }
  return r;
}

RandResult run_spdk() {
  RandResult r;
  {
    auto bed = SpdkBed::make();
    bed.sys->ssd().nand().force_mode(true);
    spdk::WorkloadResult res;
    auto io = [](spdk::Driver* d, spdk::WorkloadResult* out) -> sim::Task {
      co_await d->run_random(false, Bytes{kTotal}, Bytes{kIo}, kRegionBlocks,
                             1234, out);
    };
    bed.run(io(bed.driver.get(), &res), 30);
    r.read_gb_s = res.bandwidth_gb_s();
  }
  {
    auto bed = SpdkBed::make();
    bed.sys->ssd().nand().force_mode(true);
    spdk::WorkloadResult res;
    auto io = [](spdk::Driver* d, spdk::WorkloadResult* out) -> sim::Task {
      co_await d->run_random(true, Bytes{kTotal}, Bytes{kIo}, kRegionBlocks,
                             5678, out);
    };
    bed.run(io(bed.driver.get(), &res), 30);
    r.write_gb_s = res.bandwidth_gb_s();
  }
  return r;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header("Figure 4b -- random 4 kB access bandwidth, QD 64");

  struct Config {
    const char* name;
    double paper_read, paper_write;
    RandResult r;
  };
  Config rows[] = {
      {"URAM", 1.6, 4.6, run_snacc(core::Variant::kUram)},
      {"On-board DRAM", 1.6, 4.4, run_snacc(core::Variant::kOnboardDram)},
      {"Host DRAM", 1.6, 4.8, run_snacc(core::Variant::kHostDram)},
      {"SPDK (host CPU)", 4.5, 5.25, run_spdk()},
  };
  JsonReport rep("fig4b");
  for (const Config& c : rows) {
    std::printf("%s:\n", c.name);
    print_row("rand-read 4k", c.paper_read, c.r.read_gb_s, "GB/s");
    print_row("rand-write 4k", c.paper_write, c.r.write_gb_s, "GB/s");
    const std::string k = JsonReport::key(c.name);
    rep.metric(k + "_rand_read_gb_s", c.r.read_gb_s);
    rep.metric(k + "_rand_write_gb_s", c.r.write_gb_s);
  }
  std::printf(
      "\nNote: the paper reports ~1.6 GB/s random read for all SNAcc\n"
      "variants (in-order retirement) vs 4.5 GB/s for SPDK, and 'slightly\n"
      "lower' random write for URAM/on-board DRAM vs the host variant's\n"
      "4.8 GB/s; exact per-variant write values are not printed in the "
      "paper.\n");
  return 0;
}
