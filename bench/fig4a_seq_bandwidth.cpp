// Figure 4a: bandwidth of sequential NVMe accesses, 1 GB transfer length,
// for the three SNAcc variants and the SPDK host baseline.
//
// Paper values (Samsung 990 PRO, Alveo U280, EPYC 7302P):
//   seq-read : ~6.9 GB/s for every configuration (PCIe Gen4 x4 limited).
//   seq-write: alternates between two program modes with no intermediate
//              values -- host DRAM & SPDK 6.24/5.90, URAM 5.60/5.32,
//              on-board DRAM 4.80/4.60 GB/s.
#include "bench_common.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kTotal = 1 * GiB;

struct SeqResult {
  double read_gb_s = 0;
  double write_fast_gb_s = 0;
  double write_slow_gb_s = 0;
};

SeqResult run_snacc(core::Variant variant) {
  SeqResult r;
  for (int mode = 0; mode < 2; ++mode) {
    auto bed = SnaccBed::make(variant);
    bed.sys->ssd().nand().force_mode(mode == 0);
    TimePs t0;
    TimePs t1;
    TimePs t2;
    auto io = [](core::PeClient* pe, TimePs* a, TimePs* b, TimePs* c,
                 sim::Simulator* sim) -> sim::Task {
      *a = sim->now();
      co_await pe->write(Bytes{0}, Payload::phantom(kTotal));
      *b = sim->now();
      co_await pe->read(Bytes{0}, Bytes{kTotal}, nullptr);
      *c = sim->now();
    };
    bed.run(io(bed.pe.get(), &t0, &t1, &t2, &bed.sys->sim()), 10);
    if (mode == 0) {
      r.write_fast_gb_s = gb_per_s(kTotal, t1 - t0);
      r.read_gb_s = gb_per_s(kTotal, t2 - t1);
    } else {
      r.write_slow_gb_s = gb_per_s(kTotal, t1 - t0);
    }
  }
  return r;
}

SeqResult run_spdk() {
  SeqResult r;
  for (int mode = 0; mode < 2; ++mode) {
    auto bed = SpdkBed::make();
    bed.sys->ssd().nand().force_mode(mode == 0);
    spdk::WorkloadResult wr;
    spdk::WorkloadResult rr;
    auto io = [](spdk::Driver* d, spdk::WorkloadResult* w,
                 spdk::WorkloadResult* rd) -> sim::Task {
      co_await d->run_sequential(/*is_write=*/true, Lba{}, Bytes{kTotal},
                                 Bytes{1 * MiB}, w);
      co_await d->run_sequential(/*is_write=*/false, Lba{}, Bytes{kTotal},
                                 Bytes{1 * MiB}, rd);
    };
    bed.run(io(bed.driver.get(), &wr, &rr), 10);
    if (mode == 0) {
      r.write_fast_gb_s = wr.bandwidth_gb_s();
      r.read_gb_s = rr.bandwidth_gb_s();
    } else {
      r.write_slow_gb_s = wr.bandwidth_gb_s();
    }
  }
  return r;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header(
      "Figure 4a -- sequential access bandwidth, 1 GB transfers\n"
      "(write bandwidth alternates between two SSD program modes; both shown)");

  struct Config {
    const char* name;
    double paper_read, paper_w_fast, paper_w_slow;
    SeqResult r;
  };
  Config rows[] = {
      {"URAM", 6.9, 5.60, 5.32, run_snacc(core::Variant::kUram)},
      {"On-board DRAM", 6.9, 4.80, 4.60, run_snacc(core::Variant::kOnboardDram)},
      {"Host DRAM", 6.9, 6.24, 5.90, run_snacc(core::Variant::kHostDram)},
      {"SPDK (host CPU)", 6.9, 6.24, 5.90, run_spdk()},
  };
  JsonReport rep("fig4a");
  for (const Config& c : rows) {
    std::printf("%s:\n", c.name);
    print_row("seq-read", c.paper_read, c.r.read_gb_s, "GB/s");
    print_row("seq-write (fast mode)", c.paper_w_fast, c.r.write_fast_gb_s, "GB/s");
    print_row("seq-write (slow mode)", c.paper_w_slow, c.r.write_slow_gb_s, "GB/s");
    const std::string k = JsonReport::key(c.name);
    rep.metric(k + "_seq_read_gb_s", c.r.read_gb_s);
    rep.metric(k + "_seq_write_fast_gb_s", c.r.write_fast_gb_s);
    rep.metric(k + "_seq_write_slow_gb_s", c.r.write_slow_gb_s);
  }
  return 0;
}
