// Ablation: fault rate vs. delivered goodput. Sweeps the NAND
// uncorrectable-read probability and measures what the recovery path
// actually delivers -- random 4 KiB reads through the SNAcc streamer
// (per-command watchdog + bounded retry) and through the SPDK baseline
// driver (software resubmission). Prints per-rate goodput alongside the
// fault/retry/quarantine counters and checks the accounting identities:
// every injected fault surfaces as an error CQE, every error CQE is either
// retried or quarantined, and every submission retires exactly once.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fault/fault.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kRegion = 64 * MiB;
constexpr std::uint64_t kIoBytes = 4 * KiB;
constexpr int kReads = 4096;

struct Result {
  double goodput_gb_s = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t failed = 0;
  FaultStats fs;
  bool accounted = false;
  bool no_lost_commands = false;
};

Result run_snacc(double rate) {
  host::SnaccDeviceConfig cfg;
  cfg.streamer.recovery = true;
  cfg.streamer.max_retries = 8;
  cfg.streamer.retry_backoff = us(5);
  auto bed = SnaccBed::make(core::Variant::kUram, cfg);
  bed.sys->ssd().nand().force_mode(true);

  Result r;
  TimePs t0;
  TimePs t1;
  bool done = false;
  // `io` is a named local whose closure
  // outlives sim.run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto io = [&]() -> sim::Task {
    // Populate the region first (no program faults armed), then arm the
    // read-fault plan so only the measured reads see it.
    co_await bed.pe->write(Bytes{0}, Payload::phantom(kRegion));
    if (rate > 0.0) {
      bed.sys->ssd().nand().set_read_fault_plan(
          fault::FaultPlan::rate(rate, /*seed=*/99));
    }
    Xoshiro256 rng(17);
    t0 = bed.sys->sim().now();
    for (int i = 0; i < kReads; ++i) {
      const std::uint64_t addr = rng.below(kRegion / kIoBytes) * kIoBytes;
      Payload got;
      bool err = false;
      co_await bed.pe->read(Bytes{addr}, Bytes{kIoBytes}, &got, &err);
      if (err) {
        ++r.failed;
      } else {
        r.delivered += kIoBytes;
      }
    }
    t1 = bed.sys->sim().now();
    done = true;
  };
  bed.run(io(), 120);
  if (!done) {
    std::fprintf(stderr, "  SNAcc run stalled at rate %g -- DEADLOCK\n", rate);
    std::abort();
  }
  r.goodput_gb_s = gb_per_s(r.delivered, t1 - t0);
  r.fs = bed.dev->fault_stats();
  // Injected faults bound error CQEs from above (a multi-page command can
  // fault on several pages yet post one CQE); with single-page 4 KiB reads
  // the two match. Every streamer-visible error was retried or quarantined.
  r.accounted = r.fs.injected() >= r.fs.ssd_error_cqes &&
                (r.fs.injected() == 0 || r.fs.ssd_error_cqes > 0) &&
                r.fs.streamer_errors == r.fs.retries + r.fs.quarantined;
  r.no_lost_commands = bed.dev->streamer().commands_submitted() ==
                       bed.dev->streamer().commands_retired() + r.fs.retries;
  return r;
}

Result run_spdk(double rate) {
  spdk::DriverConfig cfg;
  cfg.max_retries = 8;
  cfg.retry_backoff = us(5);
  auto bed = SpdkBed::make(cfg);
  bed.sys->ssd().nand().force_mode(true);

  Result r;
  TimePs t0;
  TimePs t1;
  bool done = false;
  // `io` is a named local whose closure
  // outlives sim.run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto io = [&]() -> sim::Task {
    co_await bed.driver->write(Lba{}, Payload::phantom(kRegion));
    if (rate > 0.0) {
      bed.sys->ssd().nand().set_read_fault_plan(
          fault::FaultPlan::rate(rate, /*seed=*/99));
    }
    Xoshiro256 rng(17);
    t0 = bed.sys->sim().now();
    for (int i = 0; i < kReads; ++i) {
      const Lba lba{rng.below(kRegion / kIoBytes) * (kIoBytes / 512)};
      Payload got;
      nvme::Status st = nvme::Status::kSuccess;
      co_await bed.driver->read(lba, Bytes{kIoBytes}, &got, &st);
      if (st == nvme::Status::kSuccess) r.delivered += kIoBytes;
    }
    t1 = bed.sys->sim().now();
    done = true;
  };
  bed.run(io(), 120);
  if (!done) {
    std::fprintf(stderr, "  SPDK run stalled at rate %g -- DEADLOCK\n", rate);
    std::abort();
  }
  r.failed = bed.driver->io_failed();
  r.goodput_gb_s = gb_per_s(r.delivered, t1 - t0);
  r.fs.retries = bed.driver->io_retries();
  r.fs.ssd_error_cqes = bed.sys->ssd().error_cqes();
  return r;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header(
      "Ablation: per-command fault rate vs. delivered goodput "
      "(4 KiB random reads, recovery enabled)");
  const double rates[] = {0.0, 1e-4, 1e-3, 1e-2};
  JsonReport rep("ablation_faults");
  auto rate_key = [](double rate) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0e", rate);
    return JsonReport::key(buf);
  };

  std::printf("  SNAcc streamer (watchdog + bounded retry, max 8):\n");
  bool all_accounted = true;
  for (double rate : rates) {
    const Result r = run_snacc(rate);
    std::printf(
        "    rate %7.0e  goodput %6.2f GB/s  err-cqe %4llu  retries %4llu  "
        "recovered %4llu  quarantined %3llu  %s %s\n",
        rate, r.goodput_gb_s,
        static_cast<unsigned long long>(r.fs.ssd_error_cqes),
        static_cast<unsigned long long>(r.fs.retries),
        static_cast<unsigned long long>(r.fs.recovered),
        static_cast<unsigned long long>(r.fs.quarantined),
        r.accounted ? "[accounted]" : "[ACCOUNTING MISMATCH]",
        r.no_lost_commands ? "[no lost commands]" : "[LOST COMMANDS]");
    all_accounted &= r.accounted && r.no_lost_commands;
    const std::string k = "snacc_rate_" + rate_key(rate);
    rep.metric(k + "_goodput_gb_s", r.goodput_gb_s);
    rep.metric(k + "_recovered", static_cast<double>(r.fs.recovered));
    rep.metric(k + "_quarantined", static_cast<double>(r.fs.quarantined));
  }

  std::printf("  SPDK baseline (software resubmission, max 8):\n");
  for (double rate : rates) {
    const Result r = run_spdk(rate);
    std::printf(
        "    rate %7.0e  goodput %6.2f GB/s  err-cqe %4llu  retries %4llu  "
        "failed %3llu\n",
        rate, r.goodput_gb_s,
        static_cast<unsigned long long>(r.fs.ssd_error_cqes),
        static_cast<unsigned long long>(r.fs.retries),
        static_cast<unsigned long long>(r.failed));
    rep.metric("spdk_rate_" + rate_key(rate) + "_goodput_gb_s", r.goodput_gb_s);
  }
  std::printf("  accounting identities: %s\n",
              all_accounted ? "all hold" : "VIOLATED");
  return all_accounted ? 0 : 1;
}
