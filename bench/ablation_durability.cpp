// Ablation: durability tier -- replica count vs. delivered put goodput and
// cold recovery time. Builds a KV store over a ReplicatedClient spanning
// 1/2/3 SSDs and streams group-committed 4 KiB puts, then measures how long
// a fresh store takes to replay (CRC-verify) the log after a power cycle.
// Each replica count runs twice: clean, and with replica 0 armed with the
// crash plan (power loss mid-destage) plus a NAND read-fault plan on every
// device during recovery -- the watchdog retry, quorum ack, and read
// failover absorb the faults, so acknowledged data is always served.
#include "bench_common.hpp"

#include "apps/kv_store.hpp"
#include "fault/fault.hpp"
#include "snacc/replicated_client.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kValueBytes = 4 * KiB;
constexpr int kPuts = 192;
constexpr int kGroupCommit = 16;
constexpr std::uint64_t kRegion = 256 * MiB;
constexpr std::uint64_t kFaultSeed = 0x5EED;

/// Multi-SSD replicated testbed: one SNAcc streamer per SSD daisy-chained on
/// the shared FPGA port, a PeClient each, and a ReplicatedClient on top.
struct ReplBed {
  std::unique_ptr<host::System> sys;
  std::vector<std::unique_ptr<host::SnaccDevice>> devices;
  std::vector<std::unique_ptr<core::PeClient>> clients;
  std::unique_ptr<core::ReplicatedClient> repl;

  static ReplBed make(std::uint32_t replicas) {
    ReplBed bed;
    host::SystemConfig scfg;
    scfg.ssd_count = replicas;
    scfg.host_memory_bytes = 4 * GiB;
    bed.sys = std::make_unique<host::System>(scfg);
    pcie::PortId shared = pcie::kInvalidPort;
    for (std::uint32_t i = 0; i < replicas; ++i) {
      bed.sys->ssd(i).nand().force_mode(true);
      host::SnaccDeviceConfig dcfg;
      dcfg.streamer.variant = core::Variant::kHostDram;
      dcfg.streamer.recovery = true;
      dcfg.streamer.retry_backoff = us(5);
      dcfg.ssd_index = i;
      dcfg.instance = i;
      dcfg.shared_fpga_port = shared;
      bed.devices.push_back(std::make_unique<host::SnaccDevice>(*bed.sys, dcfg));
      shared = bed.devices.back()->fpga_port();
    }
    int booted = 0;
    for (auto& d : bed.devices) {
      auto boot = [](host::SnaccDevice* dv, int* count) -> sim::Task {
        co_await dv->init();
        ++*count;
      };
      bed.sys->sim().spawn(boot(d.get(), &booted));
    }
    bed.sys->sim().run_until(seconds(1));
    if (booted != static_cast<int>(replicas)) {
      std::fprintf(stderr, "replicated bed init failed (%d/%u booted)\n",
                   booted, replicas);
      std::abort();
    }
    for (auto& d : bed.devices) {
      bed.clients.push_back(std::make_unique<core::PeClient>(d->streamer()));
    }
    std::vector<core::StorageClient*> ptrs;
    for (auto& c : bed.clients) ptrs.push_back(c.get());
    core::ReplicatedClient::Config rcfg;
    rcfg.retry_backoff = us(20);
    bed.repl = std::make_unique<core::ReplicatedClient>(bed.sys->sim(), ptrs,
                                                        rcfg);
    return bed;
  }

  void run(sim::Task task, std::uint64_t budget_s = 120) {
    sys->sim().spawn(std::move(task));
    sys->sim().run_until(sys->sim().now() + seconds(budget_s));
  }
};

struct Result {
  double goodput_gb_s = 0.0;
  double recovery_ms = 0.0;
  std::uint64_t recovered_records = 0;
  std::uint64_t crash_faults = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t quorum_failures = 0;
  bool all_served = false;
};

Result run_tier(std::uint32_t replicas, bool faulted) {
  auto bed = ReplBed::make(replicas);
  apps::KvStore store(*bed.repl, Bytes{}, Bytes{kRegion});

  Result r;
  TimePs t0;
  TimePs t1;
  TimePs r0;
  TimePs r1;
  bool done = false;
  // `io` is a named local whose closure
  // outlives sim.run_until(); the frame completes before it is destroyed.
  // snacc-lint: allow(dangling-capture): safe by construction, see above.
  auto io = [&]() -> sim::Task {
    if (faulted) {
      // Replica 0 loses power mid-destage partway through the stream (the
      // schedule index counts commands from arming, i.e. from here).
      auto crash = fault::FaultPlan::at({32});
      crash.seed = kFaultSeed;
      bed.sys->ssd(0).set_crash_plan(crash);
    }

    apps::PutStatus st = apps::PutStatus::kOk;
    t0 = bed.sys->sim().now();
    for (int i = 0; i < kPuts; ++i) {
      co_await store.put("k-" + std::to_string(i),
                         Payload::filled(kValueBytes,
                                         static_cast<std::uint8_t>(i)),
                         &st);
      if (st != apps::PutStatus::kOk) {
        std::fprintf(stderr, "  put %d failed: %s\n", i,
                     apps::put_status_name(st));
        std::abort();
      }
      if ((i + 1) % kGroupCommit == 0) {
        bool ok = false;
        co_await store.commit(&ok);
        if (!ok) std::abort();
      }
    }
    t1 = bed.sys->sim().now();

    if (faulted) {
      // Existing fault plans on the recovery path: uncorrectable NAND reads
      // on every replica while the fresh store CRC-scans the log.
      for (std::uint32_t i = 0; i < replicas; ++i) {
        auto reads = fault::FaultPlan::rate(1e-3, /*seed=*/0);
        reads.seed = kFaultSeed + i;
        bed.sys->ssd(i).nand().set_read_fault_plan(reads);
      }
    }

    // Cold restart: a fresh store replays (and CRC-verifies) the whole log.
    apps::KvStore fresh(*bed.repl, Bytes{}, Bytes{kRegion});
    r0 = bed.sys->sim().now();
    co_await fresh.recover(&r.recovered_records);
    r1 = bed.sys->sim().now();

    // Every acknowledged key is served with the bytes that were committed.
    r.all_served = true;
    for (int i = 0; i < kPuts; ++i) {
      Payload got;
      bool found = false;
      co_await fresh.get("k-" + std::to_string(i), &got, &found);
      r.all_served &=
          found && got.content_equals(
                       Payload::filled(kValueBytes,
                                       static_cast<std::uint8_t>(i)));
    }
    done = true;
  };
  bed.run(io());
  if (!done) {
    std::fprintf(stderr,
                 "  durability run stalled (replicas=%u faulted=%d) -- "
                 "DEADLOCK\n",
                 replicas, faulted ? 1 : 0);
    std::abort();
  }
  r.goodput_gb_s = gb_per_s(static_cast<std::uint64_t>(kPuts) * kValueBytes,
                            t1 - t0);
  r.recovery_ms = to_ms(r1 - r0);
  r.crash_faults = bed.sys->ssd(0).crash_faults_injected();
  r.resubmissions = bed.repl->resubmissions();
  r.quorum_failures = bed.repl->quorum_failures();
  return r;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header(
      "Ablation: durability tier -- replica count vs. put goodput and "
      "recovery time (4 KiB group-committed puts)");
  JsonReport rep("ablation_durability");

  bool all_ok = true;
  for (int faulted = 0; faulted <= 1; ++faulted) {
    std::printf("  %s:\n", faulted
                               ? "crash plan on replica 0 + NAND read faults"
                               : "fault-free");
    for (std::uint32_t replicas = 1; replicas <= 3; ++replicas) {
      const Result r = run_tier(replicas, faulted != 0);
      std::printf(
          "    replicas %u  goodput %6.3f GB/s  recovery %7.3f ms  "
          "records %3llu  crash %llu  resub %2llu  quorum-fail %llu  %s\n",
          replicas, r.goodput_gb_s, r.recovery_ms,
          static_cast<unsigned long long>(r.recovered_records),
          static_cast<unsigned long long>(r.crash_faults),
          static_cast<unsigned long long>(r.resubmissions),
          static_cast<unsigned long long>(r.quorum_failures),
          r.all_served ? "[all served]" : "[DATA LOSS]");
      all_ok &= r.all_served && r.recovered_records ==
                                   static_cast<std::uint64_t>(kPuts);
      all_ok &= r.quorum_failures == 0;
      if (faulted) all_ok &= r.crash_faults == 1;
      const std::string k = std::string(faulted ? "faulted" : "clean") +
                            "_replicas_" + std::to_string(replicas);
      rep.metric(k + "_goodput_gb_s", r.goodput_gb_s);
      rep.metric(k + "_recovery_ms", r.recovery_ms);
      rep.metric(k + "_records", static_cast<double>(r.recovered_records));
      rep.metric(k + "_resubmissions", static_cast<double>(r.resubmissions));
    }
  }
  std::printf("  durability invariants: %s\n",
              all_ok ? "all hold" : "VIOLATED");
  return all_ok ? 0 : 1;
}
