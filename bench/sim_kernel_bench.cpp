// Microbenchmark for the discrete-event kernel itself: raw event
// throughput, channel hand-off rate, and future completion rate.
//
// Unlike the paper-figure benches (which report *simulated* time), this one
// deliberately measures *wall-clock* throughput of the simulator -- it
// exists to keep the scheduler hot path honest ("runs as fast as the
// hardware allows" needs the kernel to scale to billions of events). All
// workloads are seeded/deterministic, so the event count per run is fixed;
// only the wall time varies.
//
// Usage:
//   sim_kernel_bench [--min-events-per-sec N]
// With the flag (used by the `perf`-labelled ctest entry) the process exits
// non-zero if event throughput falls below the floor -- a coarse regression
// guard, so the floor is generous.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "sim/channel.hpp"
#include "sim/cluster.hpp"
#include "sim/future.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace snacc::bench {
namespace {

// Wall-clock is the quantity under measurement here -- host events/second of
// the simulator kernel. It is printed and discarded, never fed back into
// simulated state, so reproducibility of the run itself is unaffected.
// snacc-lint: allow(nondeterminism): reporting-only host timing, see above.
double seconds_since(std::chrono::steady_clock::time_point t0) {
  // snacc-lint: allow(nondeterminism): reporting-only host timing, see above.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --------------------------------------------------------------------------
// Event throughput: many concurrent timer tasks with interleaved deadlines,
// exercising heap push/pop with a well-mixed key distribution.

sim::Task timer_task(sim::Simulator* sim, std::uint64_t seed, int rounds) {
  std::uint64_t lcg = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int i = 0; i < rounds; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    co_await sim->delay(ps(1 + (lcg >> 33) % 5000));
  }
}

double bench_events(std::uint64_t* out_events) {
  constexpr int kTasks = 256;
  constexpr int kRounds = 20000;
  sim::Simulator sim;
  for (int t = 0; t < kTasks; ++t) {
    sim.spawn(timer_task(&sim, static_cast<std::uint64_t>(t) + 1, kRounds));
  }
  // snacc-lint: allow(nondeterminism): wall-clock is the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const double dt = seconds_since(t0);
  *out_events = sim.events_processed();
  return static_cast<double>(sim.events_processed()) / dt;
}

// --------------------------------------------------------------------------
// Domain scaling: the same timer-task storm, with the 256 tasks split across
// a SimCluster's domains and a heartbeat token circling the domains through
// Mailbox edges (so the conservative sync machinery -- merges, window
// planning, barriers -- is on the measured path, not just independent
// free-running heaps). Fixed total work; wall-clock throughput vs domain
// count is the scaling curve.

sim::Task ring_seed(sim::Mailbox<int>* out, sim::Mailbox<int>* in, int laps) {
  co_await out->push(0);
  for (int i = 0; i < laps; ++i) {
    auto v = co_await in->pop();
    if (!v) break;
    if (i + 1 < laps) co_await out->push(*v + 1);
  }
  out->close();
}

sim::Task ring_forward(sim::Mailbox<int>* in, sim::Mailbox<int>* out) {
  while (auto v = co_await in->pop()) co_await out->push(*v);
  out->close();
}

double bench_events_domains(std::uint32_t domains, std::uint64_t* out_events) {
  constexpr int kTasks = 256;
  constexpr int kRounds = 20000;
  constexpr int kLaps = 2000;
  sim::SimCluster cluster(domains);
  for (int t = 0; t < kTasks; ++t) {
    sim::Domain& d = cluster.domain(static_cast<std::uint32_t>(t) % domains);
    d.spawn(timer_task(&d, static_cast<std::uint64_t>(t) + 1, kRounds));
  }
  std::vector<std::unique_ptr<sim::Mailbox<int>>> ring;
  if (domains > 1) {
    for (std::uint32_t i = 0; i < domains; ++i) {
      ring.push_back(std::make_unique<sim::Mailbox<int>>(
          cluster.domain(i), cluster.domain((i + 1) % domains), 4, ns(100)));
    }
    cluster.domain(0).spawn(
        ring_seed(ring.front().get(), ring.back().get(), kLaps));
    for (std::uint32_t i = 1; i < domains; ++i) {
      cluster.domain(i).spawn(ring_forward(ring[i - 1].get(), ring[i].get()));
    }
  }
  // snacc-lint: allow(nondeterminism): wall-clock is the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  const double dt = seconds_since(t0);
  *out_events = cluster.events_processed();
  return static_cast<double>(cluster.events_processed()) / dt;
}

// --------------------------------------------------------------------------
// Channel hand-offs: producer/consumer pairs over a bounded channel, always
// alternating between full and empty so both waiter paths are exercised.

sim::Task producer(sim::Channel<std::uint64_t>* ch, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) co_await ch->push(i);
  ch->close();
}

sim::Task consumer(sim::Channel<std::uint64_t>* ch, std::uint64_t* sink) {
  while (auto v = co_await ch->pop()) *sink += *v;
}

double bench_channel(std::uint64_t* out_handoffs) {
  constexpr std::uint64_t kItems = 600000;
  sim::Simulator sim;
  sim::Channel<std::uint64_t> ch(sim, 16);
  std::uint64_t sink = 0;
  sim.spawn(producer(&ch, kItems));
  sim.spawn(consumer(&ch, &sink));
  // snacc-lint: allow(nondeterminism): wall-clock is the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const double dt = seconds_since(t0);
  if (sink != kItems * (kItems - 1) / 2) {
    std::fprintf(stderr, "channel bench checksum mismatch\n");
    std::exit(1);
  }
  *out_handoffs = kItems;
  return static_cast<double>(kItems) / dt;
}

// --------------------------------------------------------------------------
// Futures: RPC-style one-shot promise/future pairs, single awaiter each
// (the dominant pattern: every PCIe read, NVMe completion, DRAM access).

sim::Task rpc_setter(sim::Simulator* sim, sim::Promise<std::uint64_t> p,
                     std::uint64_t v) {
  co_await sim->delay(ps(10));
  p.set(v);
}

sim::Task rpc_loop(sim::Simulator* sim, std::uint64_t n, std::uint64_t* sink) {
  for (std::uint64_t i = 0; i < n; ++i) {
    sim::Promise<std::uint64_t> p(*sim);
    sim::Future<std::uint64_t> f = p.future();
    sim->spawn(rpc_setter(sim, std::move(p), i));
    *sink += co_await f;
  }
}

double bench_futures(std::uint64_t* out_futures) {
  constexpr std::uint64_t kCalls = 400000;
  sim::Simulator sim;
  std::uint64_t sink = 0;
  sim.spawn(rpc_loop(&sim, kCalls, &sink));
  // snacc-lint: allow(nondeterminism): wall-clock is the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const double dt = seconds_since(t0);
  if (sink != kCalls * (kCalls - 1) / 2) {
    std::fprintf(stderr, "future bench checksum mismatch\n");
    std::exit(1);
  }
  *out_futures = kCalls;
  return static_cast<double>(kCalls) / dt;
}

}  // namespace
}  // namespace snacc::bench

int main(int argc, char** argv) {
  using namespace snacc::bench;
  double floor_eps = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-events-per-sec") == 0 && i + 1 < argc) {
      floor_eps = std::atof(argv[++i]);
    }
  }

  print_header("Simulation-kernel microbenchmark (wall-clock throughput)");

  // Best-of-3: each workload is deterministic, so runs differ only by OS
  // noise and the fastest run is the least-perturbed estimate.
  std::uint64_t events = 0, handoffs = 0, futures = 0;
  double eps = 0.0, hps = 0.0, fps = 0.0;
  const std::uint32_t kDomainSweep[] = {1, 2, 4};
  std::uint64_t dom_events[3] = {};
  double dom_eps[3] = {};
  for (int rep = 0; rep < 3; ++rep) {
    eps = std::max(eps, bench_events(&events));
    hps = std::max(hps, bench_channel(&handoffs));
    fps = std::max(fps, bench_futures(&futures));
    for (int i = 0; i < 3; ++i) {
      dom_eps[i] = std::max(
          dom_eps[i], bench_events_domains(kDomainSweep[i], &dom_events[i]));
    }
  }

  std::printf("  events        %12" PRIu64 "   %12.0f events/s\n", events, eps);
  std::printf("  chan handoffs %12" PRIu64 "   %12.0f handoffs/s\n", handoffs,
              hps);
  std::printf("  futures       %12" PRIu64 "   %12.0f futures/s\n", futures,
              fps);
  for (int i = 0; i < 3; ++i) {
    std::printf("  events (%u dom)%12" PRIu64 "   %12.0f events/s\n",
                kDomainSweep[i], dom_events[i], dom_eps[i]);
  }

  JsonReport rep("sim_kernel");
  rep.field("threads", std::thread::hardware_concurrency());
  rep.field("domains", 4);
  rep.metric("events_per_sec", eps);
  rep.metric("channel_handoffs_per_sec", hps);
  rep.metric("futures_per_sec", fps);
  for (int i = 0; i < 3; ++i) {
    rep.metric("events_per_sec_domains_" + std::to_string(kDomainSweep[i]),
               dom_eps[i]);
  }
  rep.write();

  if (floor_eps > 0.0 && eps < floor_eps) {
    std::fprintf(stderr,
                 "FAIL: events/s %.0f below required floor %.0f "
                 "(scheduler hot-path regression?)\n",
                 eps, floor_eps);
    return 1;
  }
  return 0;
}
