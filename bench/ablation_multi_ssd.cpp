// Ablation (Sec. 7, "Multi-SSD Support"): stripe one logical address space
// across N SSDs, one queue pair + streamer per SSD, all sharing the FPGA's
// PCIe link. Bandwidth should add per SSD until that link saturates,
// "hiding the latency of a single SSD".
#include <memory>

#include "bench_common.hpp"
#include "snacc/striped_client.hpp"

namespace snacc::bench {
namespace {

struct Result {
  double write_gb_s;
  double read_gb_s;
};

Result run(std::uint32_t n) {
  host::SystemConfig sys_cfg;
  sys_cfg.ssd_count = n;
  sys_cfg.host_memory_bytes = 4 * GiB;
  auto sys = std::make_unique<host::System>(sys_cfg);
  std::vector<std::unique_ptr<host::SnaccDevice>> devices;
  pcie::PortId shared = pcie::kInvalidPort;
  for (std::uint32_t i = 0; i < n; ++i) {
    sys->ssd(i).nand().force_mode(true);
    host::SnaccDeviceConfig cfg;
    cfg.streamer.variant = core::Variant::kHostDram;
    cfg.ssd_index = i;
    cfg.instance = i;
    cfg.shared_fpga_port = shared;
    devices.push_back(std::make_unique<host::SnaccDevice>(*sys, cfg));
    shared = devices.back()->fpga_port();
  }
  int ready = 0;
  for (auto& dev : devices) {
    auto boot = [](host::SnaccDevice* d, int* c) -> sim::Task {
      co_await d->init();
      ++*c;
    };
    sys->sim().spawn(boot(dev.get(), &ready));
  }
  sys->sim().run_until(seconds(1));
  if (ready != static_cast<int>(n)) return {0, 0};

  std::vector<core::NvmeStreamer*> streamers;
  for (auto& dev : devices) streamers.push_back(&dev->streamer());
  core::StripedClient striped(streamers);

  const std::uint64_t total = 512 * MiB;
  TimePs t0;
  TimePs tw;
  TimePs tr;
  bool done = false;
  auto io = [](host::System* sys, core::StripedClient* striped, TimePs* a,
               TimePs* b, TimePs* c, bool* flag) -> sim::Task {
    *a = sys->sim().now();
    co_await striped->write(Bytes{}, Payload::phantom(total));
    *b = sys->sim().now();
    co_await striped->read(Bytes{}, Bytes{total}, nullptr);
    *c = sys->sim().now();
    *flag = true;
  };
  sys->sim().spawn(io(sys.get(), &striped, &t0, &tw, &tr, &done));
  sys->sim().run_until(sys->sim().now() + seconds(60));
  if (!done) return {0, 0};
  return {gb_per_s(total, tw - t0), gb_per_s(total, tr - tw)};
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header(
      "Ablation: multi-SSD scaling (Sec. 7) -- host-DRAM variant, 1 MB "
      "stripes");
  JsonReport rep("ablation_multi_ssd");
  for (std::uint32_t n : {1u, 2u, 3u, 4u}) {
    const auto r = run(n);
    const std::string k = "ssd_x" + std::to_string(n);
    rep.metric(k + "_write_gb_s", r.write_gb_s);
    rep.metric(k + "_read_gb_s", r.read_gb_s);
    std::printf("  %u SSD%s  seq-write %6.2f GB/s   seq-read %6.2f GB/s\n", n,
                n == 1 ? " " : "s", r.write_gb_s, r.read_gb_s);
  }
  std::printf("\nExpected shape: writes add ~6.2 GB/s per SSD, reads\n"
              "~6.9 GB/s per SSD, both capped by the FPGA's Gen3 x16 link\n"
              "(~12.5 GB/s effective).\n");
  return 0;
}
