// Ablation (Sec. 7, "Out-of-order Retirement"): the paper attributes the
// ~1.6 GB/s random-read limit to in-order completion processing and proposes
// out-of-order retirement. This bench runs the random 4 kB read workload
// with both retirement engines across buffer variants.
#include "bench_common.hpp"

#include "common/rng.hpp"

namespace snacc::bench {
namespace {

constexpr std::uint64_t kTotal = 128 * MiB;
constexpr std::uint64_t kIo = 4 * KiB;
constexpr std::uint64_t kCommands = kTotal / kIo;
constexpr std::uint64_t kRegionBlocks = 4u << 20;

double run(core::Variant variant, bool ooo) {
  host::SnaccDeviceConfig cfg;
  cfg.streamer.out_of_order = ooo;
  auto bed = SnaccBed::make(variant, cfg);
  bed.sys->ssd().nand().force_mode(true);
  TimePs t0;
  TimePs t1;
  bool done = false;
  auto harness = [](SnaccBed* bed, TimePs* a, TimePs* b, bool* flag) -> sim::Task {
    auto* pe = bed->pe.get();
    *a = bed->sys->sim().now();
    struct Issuer {
      static sim::Task run(core::PeClient* pe) {
        Xoshiro256 rng(99);
        for (std::uint64_t i = 0; i < kCommands; ++i) {
          co_await pe->start_read(Bytes{rng.below(kRegionBlocks) * kIo}, Bytes{kIo});
        }
      }
    };
    bed->sys->sim().spawn(Issuer::run(pe));
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      co_await pe->collect_read(nullptr);
    }
    *b = bed->sys->sim().now();
    *flag = true;
  };
  bed.run(harness(&bed, &t0, &t1, &done), 60);
  return done ? gb_per_s(kTotal, t1 - t0) : 0.0;
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header(
      "Ablation: in-order vs out-of-order retirement (random 4 kB reads)\n"
      "Paper Sec. 7: the in-order model caps random reads at ~1.6 GB/s;\n"
      "out-of-order retirement should recover toward the SPDK level.");
  JsonReport rep("ablation_ooo_retirement");
  for (core::Variant v : {core::Variant::kUram, core::Variant::kOnboardDram,
                          core::Variant::kHostDram}) {
    const double in_order = run(v, false);
    const double ooo = run(v, true);
    const std::string k = JsonReport::key(core::variant_name(v));
    rep.metric(k + "_in_order_gb_s", in_order);
    rep.metric(k + "_ooo_gb_s", ooo);
    std::printf("  %-14s in-order %5.2f GB/s   out-of-order %5.2f GB/s   "
                "(%.1fx)\n",
                core::variant_name(v), in_order, ooo,
                in_order > 0 ? ooo / in_order : 0.0);
  }
  return 0;
}
