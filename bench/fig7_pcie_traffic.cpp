// Figure 7: PCIe data transfers for the case-study configurations.
//
// Paper: "URAM and on-board DRAM have the fewest transfers compared to GPU,
// which has the most" -- the FPGA-buffer variants move the payload across
// PCIe exactly once (SSD pulls from the FPGA peer-to-peer), the host-DRAM
// and SPDK configurations twice (FPGA -> host, host -> SSD), and the GPU
// configuration adds the thumbnail and result hops on top.
#include <cstdio>
#include <cstdlib>

#include "apps/case_study.hpp"
#include "bench_common.hpp"

namespace {

void report(const char* name, double paper_ratio,
            const snacc::apps::CaseStudyResult& r, double payload_bytes,
            snacc::bench::JsonReport& rep) {
  if (!r.ok) {
    std::printf("%-22s FAILED TO COMPLETE\n", name);
    return;
  }
  const double ratio = static_cast<double>(r.pcie_total_bytes) / payload_bytes;
  rep.metric(snacc::bench::JsonReport::key(name) + "_pcie_payload_ratio", ratio);
  std::printf("%-22s paper ~%.2fx payload   measured %.2fx (%.2f GB total)\n",
              name, paper_ratio, ratio, r.pcie_total_bytes / 1e9);
  for (const auto& path : r.pcie_paths) {
    if (path.bytes < payload_bytes / 100) continue;  // hide control traffic
    std::printf("    %-34s %8.2f GB\n", path.path.c_str(), path.bytes / 1e9);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snacc;
  using namespace snacc::apps;
  using namespace snacc::bench;

  ImageStreamConfig cfg;
  cfg.count = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 192;

  print_header("Figure 7 -- PCIe data transfers per case-study configuration");
  std::printf("Payload: %u images, %.2f GB\n\n", cfg.count,
              cfg.total_bytes() / 1e9);
  const double payload = static_cast<double>(cfg.total_bytes());

  JsonReport rep("fig7");
  report("SNAcc URAM", 1.0, run_snacc_case_study(core::Variant::kUram, cfg),
         payload, rep);
  report("SNAcc On-board DRAM", 1.0,
         run_snacc_case_study(core::Variant::kOnboardDram, cfg), payload, rep);
  report("SNAcc Host DRAM", 2.0,
         run_snacc_case_study(core::Variant::kHostDram, cfg), payload, rep);
  report("SPDK reference", 2.0, run_spdk_case_study(cfg), payload, rep);
  report("GPU reference", 2.1, run_gpu_case_study(cfg), payload, rep);

  std::printf(
      "\nPaper Fig. 7 shape: URAM and on-board DRAM fewest transfers\n"
      "(payload crosses PCIe once, P2P), host DRAM and SPDK twice, GPU most\n"
      "(adds thumbnail upload and classification download).\n");
  return 0;
}
