// Figure 4c: latency of a single 4 kB read / write to a random address.
//
// Paper values: read -- URAM 34 us, on-board DRAM 41 us, host DRAM 43 us
// (the DRAM variants must read the buffer out before streaming to the PE),
// SPDK 57 us. Write -- all four below 9 us, SPDK slightly fastest (the
// controller acknowledges from its write cache).
//
// SNAcc latency is measured PE-to-PE (command sent on the stream until the
// data/token returns); SPDK is measured submit-to-completion on the host.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace snacc::bench {
namespace {

constexpr int kSamples = 200;
constexpr std::uint64_t kIo = 4 * KiB;
constexpr std::uint64_t kRegionBlocks = 4u << 20;

struct LatencyResult {
  double read_us = 0;
  double write_us = 0;
};

LatencyResult run_snacc(core::Variant variant) {
  auto bed = SnaccBed::make(variant);
  bed.sys->ssd().nand().force_mode(true);
  // Paper-figure numbers use exact order statistics, not bucketed estimates.
  LatencyStats reads{LatencyStats::Mode::kExact};
  LatencyStats writes{LatencyStats::Mode::kExact};
  auto io = [](core::PeClient* pe, sim::Simulator* sim, LatencyStats* rd,
               LatencyStats* wr) -> sim::Task {
    Xoshiro256 rng(42);
    for (int i = 0; i < kSamples; ++i) {
      const std::uint64_t addr = rng.below(kRegionBlocks) * kIo;
      TimePs t0 = sim->now();
      co_await pe->write(Bytes{addr}, Payload::phantom(kIo), Bytes{kIo});
      wr->add(sim->now() - t0);
      t0 = sim->now();
      co_await pe->read(Bytes{addr}, Bytes{kIo}, nullptr);
      rd->add(sim->now() - t0);
      // Space commands out so each is a cold, isolated access.
      co_await sim->delay(us(300));
    }
  };
  bed.run(io(bed.pe.get(), &bed.sys->sim(), &reads, &writes), 10);
  return {reads.mean_us(), writes.mean_us()};
}

LatencyResult run_spdk() {
  auto bed = SpdkBed::make();
  bed.sys->ssd().nand().force_mode(true);
  LatencyStats reads{LatencyStats::Mode::kExact};
  LatencyStats writes{LatencyStats::Mode::kExact};
  auto io = [](spdk::Driver* d, sim::Simulator* sim, LatencyStats* rd,
               LatencyStats* wr) -> sim::Task {
    Xoshiro256 rng(42);
    for (int i = 0; i < kSamples; ++i) {
      const std::uint64_t lba = rng.below(kRegionBlocks);
      TimePs t0 = sim->now();
      co_await d->write(Lba{lba}, Payload::phantom(kIo));
      wr->add(sim->now() - t0);
      t0 = sim->now();
      co_await d->read(Lba{lba}, Bytes{kIo}, nullptr);
      rd->add(sim->now() - t0);
      co_await sim->delay(us(300));
    }
  };
  bed.run(io(bed.driver.get(), &bed.sys->sim(), &reads, &writes), 10);
  return {reads.mean_us(), writes.mean_us()};
}

}  // namespace
}  // namespace snacc::bench

int main() {
  using namespace snacc;
  using namespace snacc::bench;
  print_header("Figure 4c -- single 4 kB access latency (random address)");

  struct Config {
    const char* name;
    double paper_read_us, paper_write_us;
    LatencyResult r;
  };
  Config rows[] = {
      {"URAM", 34.0, 7.0, run_snacc(core::Variant::kUram)},
      {"On-board DRAM", 41.0, 7.5, run_snacc(core::Variant::kOnboardDram)},
      {"Host DRAM", 43.0, 8.0, run_snacc(core::Variant::kHostDram)},
      {"SPDK (host CPU)", 57.0, 6.0, run_spdk()},
  };
  bool writes_below_9 = true;
  JsonReport rep("fig4c");
  for (const Config& c : rows) {
    std::printf("%s:\n", c.name);
    print_row("read latency", c.paper_read_us, c.r.read_us, "us");
    print_row("write latency", c.paper_write_us, c.r.write_us, "us");
    writes_below_9 = writes_below_9 && c.r.write_us < 9.0;
    const std::string k = JsonReport::key(c.name);
    rep.metric(k + "_read_us", c.r.read_us);
    rep.metric(k + "_write_us", c.r.write_us);
  }
  std::printf("\nAll write latencies below 9 us (paper): %s\n",
              writes_below_9 ? "yes" : "NO");
  std::printf(
      "(The paper gives exact numbers only for reads; write bars are read\n"
      "off the figure as < 9 us with SPDK slightly fastest.)\n");
  return 0;
}
