file(REMOVE_RECURSE
  "CMakeFiles/snacc_apps.dir/apps/case_study.cpp.o"
  "CMakeFiles/snacc_apps.dir/apps/case_study.cpp.o.d"
  "CMakeFiles/snacc_apps.dir/apps/image.cpp.o"
  "CMakeFiles/snacc_apps.dir/apps/image.cpp.o.d"
  "CMakeFiles/snacc_apps.dir/apps/kv_store.cpp.o"
  "CMakeFiles/snacc_apps.dir/apps/kv_store.cpp.o.d"
  "libsnacc_apps.a"
  "libsnacc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
