file(REMOVE_RECURSE
  "libsnacc_apps.a"
)
