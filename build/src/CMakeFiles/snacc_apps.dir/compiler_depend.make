# Empty compiler generated dependencies file for snacc_apps.
# This may be replaced when dependencies are built.
