file(REMOVE_RECURSE
  "libsnacc_host.a"
)
