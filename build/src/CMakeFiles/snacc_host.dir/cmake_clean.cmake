file(REMOVE_RECURSE
  "CMakeFiles/snacc_host.dir/host/nvme_admin.cpp.o"
  "CMakeFiles/snacc_host.dir/host/nvme_admin.cpp.o.d"
  "CMakeFiles/snacc_host.dir/host/snacc_device.cpp.o"
  "CMakeFiles/snacc_host.dir/host/snacc_device.cpp.o.d"
  "libsnacc_host.a"
  "libsnacc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
