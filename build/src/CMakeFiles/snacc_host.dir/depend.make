# Empty dependencies file for snacc_host.
# This may be replaced when dependencies are built.
