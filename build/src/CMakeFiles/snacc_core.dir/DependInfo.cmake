
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snacc/buffer_backend.cpp" "src/CMakeFiles/snacc_core.dir/snacc/buffer_backend.cpp.o" "gcc" "src/CMakeFiles/snacc_core.dir/snacc/buffer_backend.cpp.o.d"
  "/root/repo/src/snacc/buffer_manager.cpp" "src/CMakeFiles/snacc_core.dir/snacc/buffer_manager.cpp.o" "gcc" "src/CMakeFiles/snacc_core.dir/snacc/buffer_manager.cpp.o.d"
  "/root/repo/src/snacc/prp_engine.cpp" "src/CMakeFiles/snacc_core.dir/snacc/prp_engine.cpp.o" "gcc" "src/CMakeFiles/snacc_core.dir/snacc/prp_engine.cpp.o.d"
  "/root/repo/src/snacc/reorder_buffer.cpp" "src/CMakeFiles/snacc_core.dir/snacc/reorder_buffer.cpp.o" "gcc" "src/CMakeFiles/snacc_core.dir/snacc/reorder_buffer.cpp.o.d"
  "/root/repo/src/snacc/resource_model.cpp" "src/CMakeFiles/snacc_core.dir/snacc/resource_model.cpp.o" "gcc" "src/CMakeFiles/snacc_core.dir/snacc/resource_model.cpp.o.d"
  "/root/repo/src/snacc/splitter.cpp" "src/CMakeFiles/snacc_core.dir/snacc/splitter.cpp.o" "gcc" "src/CMakeFiles/snacc_core.dir/snacc/splitter.cpp.o.d"
  "/root/repo/src/snacc/streamer.cpp" "src/CMakeFiles/snacc_core.dir/snacc/streamer.cpp.o" "gcc" "src/CMakeFiles/snacc_core.dir/snacc/streamer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snacc_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
