file(REMOVE_RECURSE
  "libsnacc_core.a"
)
