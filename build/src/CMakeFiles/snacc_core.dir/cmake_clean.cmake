file(REMOVE_RECURSE
  "CMakeFiles/snacc_core.dir/snacc/buffer_backend.cpp.o"
  "CMakeFiles/snacc_core.dir/snacc/buffer_backend.cpp.o.d"
  "CMakeFiles/snacc_core.dir/snacc/buffer_manager.cpp.o"
  "CMakeFiles/snacc_core.dir/snacc/buffer_manager.cpp.o.d"
  "CMakeFiles/snacc_core.dir/snacc/prp_engine.cpp.o"
  "CMakeFiles/snacc_core.dir/snacc/prp_engine.cpp.o.d"
  "CMakeFiles/snacc_core.dir/snacc/reorder_buffer.cpp.o"
  "CMakeFiles/snacc_core.dir/snacc/reorder_buffer.cpp.o.d"
  "CMakeFiles/snacc_core.dir/snacc/resource_model.cpp.o"
  "CMakeFiles/snacc_core.dir/snacc/resource_model.cpp.o.d"
  "CMakeFiles/snacc_core.dir/snacc/splitter.cpp.o"
  "CMakeFiles/snacc_core.dir/snacc/splitter.cpp.o.d"
  "CMakeFiles/snacc_core.dir/snacc/streamer.cpp.o"
  "CMakeFiles/snacc_core.dir/snacc/streamer.cpp.o.d"
  "libsnacc_core.a"
  "libsnacc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
