# Empty compiler generated dependencies file for snacc_core.
# This may be replaced when dependencies are built.
