file(REMOVE_RECURSE
  "CMakeFiles/snacc_pcie.dir/pcie/fabric.cpp.o"
  "CMakeFiles/snacc_pcie.dir/pcie/fabric.cpp.o.d"
  "CMakeFiles/snacc_pcie.dir/pcie/iommu.cpp.o"
  "CMakeFiles/snacc_pcie.dir/pcie/iommu.cpp.o.d"
  "libsnacc_pcie.a"
  "libsnacc_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
