file(REMOVE_RECURSE
  "libsnacc_pcie.a"
)
