# Empty dependencies file for snacc_pcie.
# This may be replaced when dependencies are built.
