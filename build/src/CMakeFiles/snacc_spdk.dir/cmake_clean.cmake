file(REMOVE_RECURSE
  "CMakeFiles/snacc_spdk.dir/spdk/driver.cpp.o"
  "CMakeFiles/snacc_spdk.dir/spdk/driver.cpp.o.d"
  "libsnacc_spdk.a"
  "libsnacc_spdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_spdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
