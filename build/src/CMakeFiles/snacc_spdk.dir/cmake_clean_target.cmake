file(REMOVE_RECURSE
  "libsnacc_spdk.a"
)
