# Empty dependencies file for snacc_spdk.
# This may be replaced when dependencies are built.
