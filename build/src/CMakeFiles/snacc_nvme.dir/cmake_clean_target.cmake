file(REMOVE_RECURSE
  "libsnacc_nvme.a"
)
