# Empty compiler generated dependencies file for snacc_nvme.
# This may be replaced when dependencies are built.
