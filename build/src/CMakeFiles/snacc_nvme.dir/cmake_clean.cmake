file(REMOVE_RECURSE
  "CMakeFiles/snacc_nvme.dir/nvme/nand.cpp.o"
  "CMakeFiles/snacc_nvme.dir/nvme/nand.cpp.o.d"
  "CMakeFiles/snacc_nvme.dir/nvme/prp.cpp.o"
  "CMakeFiles/snacc_nvme.dir/nvme/prp.cpp.o.d"
  "CMakeFiles/snacc_nvme.dir/nvme/ssd.cpp.o"
  "CMakeFiles/snacc_nvme.dir/nvme/ssd.cpp.o.d"
  "libsnacc_nvme.a"
  "libsnacc_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
