file(REMOVE_RECURSE
  "CMakeFiles/snacc_mem.dir/mem/dram.cpp.o"
  "CMakeFiles/snacc_mem.dir/mem/dram.cpp.o.d"
  "CMakeFiles/snacc_mem.dir/mem/sparse_memory.cpp.o"
  "CMakeFiles/snacc_mem.dir/mem/sparse_memory.cpp.o.d"
  "libsnacc_mem.a"
  "libsnacc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
