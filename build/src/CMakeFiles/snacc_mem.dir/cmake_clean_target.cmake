file(REMOVE_RECURSE
  "libsnacc_mem.a"
)
