# Empty compiler generated dependencies file for snacc_mem.
# This may be replaced when dependencies are built.
