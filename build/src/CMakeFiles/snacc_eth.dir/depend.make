# Empty dependencies file for snacc_eth.
# This may be replaced when dependencies are built.
