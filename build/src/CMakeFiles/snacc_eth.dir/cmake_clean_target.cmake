file(REMOVE_RECURSE
  "libsnacc_eth.a"
)
