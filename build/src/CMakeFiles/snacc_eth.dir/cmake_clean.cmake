file(REMOVE_RECURSE
  "CMakeFiles/snacc_eth.dir/eth/mac.cpp.o"
  "CMakeFiles/snacc_eth.dir/eth/mac.cpp.o.d"
  "libsnacc_eth.a"
  "libsnacc_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snacc_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
