# Empty compiler generated dependencies file for fig4c_latency.
# This may be replaced when dependencies are built.
