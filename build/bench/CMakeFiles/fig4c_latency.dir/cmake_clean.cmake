file(REMOVE_RECURSE
  "CMakeFiles/fig4c_latency.dir/fig4c_latency.cpp.o"
  "CMakeFiles/fig4c_latency.dir/fig4c_latency.cpp.o.d"
  "fig4c_latency"
  "fig4c_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
