file(REMOVE_RECURSE
  "CMakeFiles/fig6_casestudy.dir/fig6_casestudy.cpp.o"
  "CMakeFiles/fig6_casestudy.dir/fig6_casestudy.cpp.o.d"
  "fig6_casestudy"
  "fig6_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
