# Empty dependencies file for fig6_casestudy.
# This may be replaced when dependencies are built.
