file(REMOVE_RECURSE
  "CMakeFiles/fig7_pcie_traffic.dir/fig7_pcie_traffic.cpp.o"
  "CMakeFiles/fig7_pcie_traffic.dir/fig7_pcie_traffic.cpp.o.d"
  "fig7_pcie_traffic"
  "fig7_pcie_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pcie_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
