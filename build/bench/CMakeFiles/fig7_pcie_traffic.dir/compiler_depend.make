# Empty compiler generated dependencies file for fig7_pcie_traffic.
# This may be replaced when dependencies are built.
