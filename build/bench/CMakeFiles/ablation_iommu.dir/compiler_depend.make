# Empty compiler generated dependencies file for ablation_iommu.
# This may be replaced when dependencies are built.
