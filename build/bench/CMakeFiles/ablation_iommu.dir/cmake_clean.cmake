file(REMOVE_RECURSE
  "CMakeFiles/ablation_iommu.dir/ablation_iommu.cpp.o"
  "CMakeFiles/ablation_iommu.dir/ablation_iommu.cpp.o.d"
  "ablation_iommu"
  "ablation_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
