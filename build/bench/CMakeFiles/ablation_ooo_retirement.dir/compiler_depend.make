# Empty compiler generated dependencies file for ablation_ooo_retirement.
# This may be replaced when dependencies are built.
