file(REMOVE_RECURSE
  "CMakeFiles/ablation_ooo_retirement.dir/ablation_ooo_retirement.cpp.o"
  "CMakeFiles/ablation_ooo_retirement.dir/ablation_ooo_retirement.cpp.o.d"
  "ablation_ooo_retirement"
  "ablation_ooo_retirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ooo_retirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
