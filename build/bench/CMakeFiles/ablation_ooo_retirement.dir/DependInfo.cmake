
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_ooo_retirement.cpp" "bench/CMakeFiles/ablation_ooo_retirement.dir/ablation_ooo_retirement.cpp.o" "gcc" "bench/CMakeFiles/ablation_ooo_retirement.dir/ablation_ooo_retirement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snacc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_spdk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_eth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
