# Empty compiler generated dependencies file for fig4b_rand_bandwidth.
# This may be replaced when dependencies are built.
