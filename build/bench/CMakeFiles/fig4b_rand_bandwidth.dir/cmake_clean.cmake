file(REMOVE_RECURSE
  "CMakeFiles/fig4b_rand_bandwidth.dir/fig4b_rand_bandwidth.cpp.o"
  "CMakeFiles/fig4b_rand_bandwidth.dir/fig4b_rand_bandwidth.cpp.o.d"
  "fig4b_rand_bandwidth"
  "fig4b_rand_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_rand_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
