file(REMOVE_RECURSE
  "CMakeFiles/fig4a_seq_bandwidth.dir/fig4a_seq_bandwidth.cpp.o"
  "CMakeFiles/fig4a_seq_bandwidth.dir/fig4a_seq_bandwidth.cpp.o.d"
  "fig4a_seq_bandwidth"
  "fig4a_seq_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_seq_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
