# Empty compiler generated dependencies file for fig4a_seq_bandwidth.
# This may be replaced when dependencies are built.
