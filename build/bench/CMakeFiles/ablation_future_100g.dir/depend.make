# Empty dependencies file for ablation_future_100g.
# This may be replaced when dependencies are built.
