file(REMOVE_RECURSE
  "CMakeFiles/ablation_future_100g.dir/ablation_future_100g.cpp.o"
  "CMakeFiles/ablation_future_100g.dir/ablation_future_100g.cpp.o.d"
  "ablation_future_100g"
  "ablation_future_100g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_future_100g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
