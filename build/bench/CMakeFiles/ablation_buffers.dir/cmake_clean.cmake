file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffers.dir/ablation_buffers.cpp.o"
  "CMakeFiles/ablation_buffers.dir/ablation_buffers.cpp.o.d"
  "ablation_buffers"
  "ablation_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
