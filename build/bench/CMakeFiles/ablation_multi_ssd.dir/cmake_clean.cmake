file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_ssd.dir/ablation_multi_ssd.cpp.o"
  "CMakeFiles/ablation_multi_ssd.dir/ablation_multi_ssd.cpp.o.d"
  "ablation_multi_ssd"
  "ablation_multi_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
