# Empty compiler generated dependencies file for ablation_multi_ssd.
# This may be replaced when dependencies are built.
