file(REMOVE_RECURSE
  "CMakeFiles/multi_ssd.dir/multi_ssd.cpp.o"
  "CMakeFiles/multi_ssd.dir/multi_ssd.cpp.o.d"
  "multi_ssd"
  "multi_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
