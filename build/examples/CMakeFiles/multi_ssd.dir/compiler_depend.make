# Empty compiler generated dependencies file for multi_ssd.
# This may be replaced when dependencies are built.
