# Empty dependencies file for snaccfio.
# This may be replaced when dependencies are built.
