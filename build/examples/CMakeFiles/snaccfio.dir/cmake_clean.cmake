file(REMOVE_RECURSE
  "CMakeFiles/snaccfio.dir/snaccfio.cpp.o"
  "CMakeFiles/snaccfio.dir/snaccfio.cpp.o.d"
  "snaccfio"
  "snaccfio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snaccfio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
