# Empty dependencies file for streaming_etl.
# This may be replaced when dependencies are built.
