file(REMOVE_RECURSE
  "CMakeFiles/streaming_etl.dir/streaming_etl.cpp.o"
  "CMakeFiles/streaming_etl.dir/streaming_etl.cpp.o.d"
  "streaming_etl"
  "streaming_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
