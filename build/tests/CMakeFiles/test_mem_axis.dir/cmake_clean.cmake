file(REMOVE_RECURSE
  "CMakeFiles/test_mem_axis.dir/mem_axis_test.cpp.o"
  "CMakeFiles/test_mem_axis.dir/mem_axis_test.cpp.o.d"
  "test_mem_axis"
  "test_mem_axis.pdb"
  "test_mem_axis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_axis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
