# Empty compiler generated dependencies file for test_mem_axis.
# This may be replaced when dependencies are built.
