file(REMOVE_RECURSE
  "CMakeFiles/test_streamer_property.dir/streamer_property_test.cpp.o"
  "CMakeFiles/test_streamer_property.dir/streamer_property_test.cpp.o.d"
  "test_streamer_property"
  "test_streamer_property.pdb"
  "test_streamer_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streamer_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
