# Empty dependencies file for test_streamer_property.
# This may be replaced when dependencies are built.
