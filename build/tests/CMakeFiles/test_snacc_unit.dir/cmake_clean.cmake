file(REMOVE_RECURSE
  "CMakeFiles/test_snacc_unit.dir/snacc_unit_test.cpp.o"
  "CMakeFiles/test_snacc_unit.dir/snacc_unit_test.cpp.o.d"
  "test_snacc_unit"
  "test_snacc_unit.pdb"
  "test_snacc_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snacc_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
