# Empty dependencies file for test_snacc_unit.
# This may be replaced when dependencies are built.
