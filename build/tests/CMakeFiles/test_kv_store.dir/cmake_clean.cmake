file(REMOVE_RECURSE
  "CMakeFiles/test_kv_store.dir/kv_store_test.cpp.o"
  "CMakeFiles/test_kv_store.dir/kv_store_test.cpp.o.d"
  "test_kv_store"
  "test_kv_store.pdb"
  "test_kv_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
