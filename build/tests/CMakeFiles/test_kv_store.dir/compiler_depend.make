# Empty compiler generated dependencies file for test_kv_store.
# This may be replaced when dependencies are built.
