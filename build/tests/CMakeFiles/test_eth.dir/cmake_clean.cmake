file(REMOVE_RECURSE
  "CMakeFiles/test_eth.dir/eth_test.cpp.o"
  "CMakeFiles/test_eth.dir/eth_test.cpp.o.d"
  "test_eth"
  "test_eth.pdb"
  "test_eth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
