# Empty compiler generated dependencies file for test_eth.
# This may be replaced when dependencies are built.
