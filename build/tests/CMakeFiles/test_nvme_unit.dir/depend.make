# Empty dependencies file for test_nvme_unit.
# This may be replaced when dependencies are built.
