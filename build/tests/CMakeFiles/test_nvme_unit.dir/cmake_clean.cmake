file(REMOVE_RECURSE
  "CMakeFiles/test_nvme_unit.dir/nvme_unit_test.cpp.o"
  "CMakeFiles/test_nvme_unit.dir/nvme_unit_test.cpp.o.d"
  "test_nvme_unit"
  "test_nvme_unit.pdb"
  "test_nvme_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvme_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
