# Empty compiler generated dependencies file for test_nvme_spdk.
# This may be replaced when dependencies are built.
