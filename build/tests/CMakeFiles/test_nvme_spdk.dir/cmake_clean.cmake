file(REMOVE_RECURSE
  "CMakeFiles/test_nvme_spdk.dir/nvme_spdk_test.cpp.o"
  "CMakeFiles/test_nvme_spdk.dir/nvme_spdk_test.cpp.o.d"
  "test_nvme_spdk"
  "test_nvme_spdk.pdb"
  "test_nvme_spdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvme_spdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
