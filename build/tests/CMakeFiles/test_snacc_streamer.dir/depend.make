# Empty dependencies file for test_snacc_streamer.
# This may be replaced when dependencies are built.
