file(REMOVE_RECURSE
  "CMakeFiles/test_snacc_streamer.dir/snacc_streamer_test.cpp.o"
  "CMakeFiles/test_snacc_streamer.dir/snacc_streamer_test.cpp.o.d"
  "test_snacc_streamer"
  "test_snacc_streamer.pdb"
  "test_snacc_streamer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snacc_streamer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
