# Empty compiler generated dependencies file for test_case_study.
# This may be replaced when dependencies are built.
