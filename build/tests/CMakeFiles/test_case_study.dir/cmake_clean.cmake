file(REMOVE_RECURSE
  "CMakeFiles/test_case_study.dir/case_study_test.cpp.o"
  "CMakeFiles/test_case_study.dir/case_study_test.cpp.o.d"
  "test_case_study"
  "test_case_study.pdb"
  "test_case_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
