
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pcie_test.cpp" "tests/CMakeFiles/test_pcie.dir/pcie_test.cpp.o" "gcc" "tests/CMakeFiles/test_pcie.dir/pcie_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snacc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_spdk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snacc_eth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
