# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nvme_spdk[1]_include.cmake")
include("/root/repo/build/tests/test_snacc_unit[1]_include.cmake")
include("/root/repo/build/tests/test_snacc_streamer[1]_include.cmake")
include("/root/repo/build/tests/test_eth[1]_include.cmake")
include("/root/repo/build/tests/test_case_study[1]_include.cmake")
include("/root/repo/build/tests/test_pcie[1]_include.cmake")
include("/root/repo/build/tests/test_nvme_unit[1]_include.cmake")
include("/root/repo/build/tests/test_mem_axis[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_kv_store[1]_include.cmake")
include("/root/repo/build/tests/test_streamer_property[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
